/**
 * @file
 * Chip-mode (shared uncore) regression tests:
 *
 *  - A one-core ChipSim is bit-identical to a solo CycleSim: the port
 *    extraction restructured the memory system without changing
 *    single-core timing.
 *  - Dual-core mixes are architecturally correct: each core's retVal
 *    and final data segment equal its solo run; only timing moves.
 *  - Shared-L2/OCN contention is measurable and deterministic: bank
 *    conflicts, miss inflation, and per-core slowdown appear under a
 *    memory-heavy mix and reproduce exactly across runs.
 *  - MemorySystem unit behavior: contention is cross-core only (a
 *    core never queues behind itself), per-core physical striding
 *    keeps address spaces disjoint, dirty-line iteration drains.
 *  - ChipConfig validation rejects structurally impossible chips.
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/codegen.hh"
#include "core/machines.hh"
#include "harness/diff.hh"
#include "support/error.hh"
#include "testutil.hh"
#include "uarch/chip_sim.hh"
#include "wir/builder.hh"
#include "wir/interp.hh"
#include "workloads/workload.hh"

using namespace trips;
using wir::FunctionBuilder;
using wir::MemWidth;
using wir::Module;

namespace {

/** Strided store/load walk over a buffer: L1D-streaming, L2-heavy. */
void
buildMemStress(Module &mod, i64 stride, int iters)
{
    Addr buf = mod.addGlobal("buf", 192 * 1024);
    FunctionBuilder fb(mod, "main", 0);
    auto base = fb.iconst(static_cast<i64>(buf));
    auto i = fb.iconst(0);
    auto acc = fb.iconst(0);
    fb.label("loop");
    auto slot = fb.add(
        base, fb.shli(fb.andi(fb.mul(i, fb.iconst(stride)), 24575), 3));
    fb.store(slot, fb.add(i, acc), 0, MemWidth::B8);
    fb.assign(acc, fb.bxor(acc, fb.load(slot, 0, MemWidth::B8)));
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(iters)), "loop", "done");
    fb.label("done");
    fb.ret(acc);
    fb.finish();
}

struct SoloRun
{
    uarch::UarchResult res;
    MemImage mem;
};

SoloRun
runSolo(const isa::Program &prog, const Module &mod,
        const uarch::UarchConfig &cfg)
{
    SoloRun s;
    wir::Interp::loadGlobals(mod, s.mem);
    uarch::CycleSim sim(prog, s.mem, cfg);
    s.res = sim.run();
    EXPECT_FALSE(s.res.fuelExhausted);
    return s;
}

/** Every scalar UarchResult field plus the OPN profile. */
void
expectSameUarch(const uarch::UarchResult &a, const uarch::UarchResult &b)
{
    EXPECT_EQ(a.retVal, b.retVal);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.blocksCommitted, b.blocksCommitted);
    EXPECT_EQ(a.blocksFlushed, b.blocksFlushed);
    EXPECT_EQ(a.instsFetched, b.instsFetched);
    EXPECT_EQ(a.instsFired, b.instsFired);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.loadViolationFlushes, b.loadViolationFlushes);
    EXPECT_EQ(a.icacheMissStalls, b.icacheMissStalls);
    EXPECT_EQ(a.l1dHits, b.l1dHits);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l1iHits, b.l1iHits);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l1dWritebacks, b.l1dWritebacks);
    EXPECT_EQ(a.l2Writebacks, b.l2Writebacks);
    EXPECT_EQ(a.loadsExecuted, b.loadsExecuted);
    EXPECT_EQ(a.storesCommitted, b.storesCommitted);
    EXPECT_EQ(a.bytesL1, b.bytesL1);
    EXPECT_EQ(a.bytesL2, b.bytesL2);
    EXPECT_EQ(a.bytesMem, b.bytesMem);
    EXPECT_EQ(a.peakInstsInFlight, b.peakInstsInFlight);
    EXPECT_DOUBLE_EQ(a.avgBlocksInFlight, b.avgBlocksInFlight);
    EXPECT_DOUBLE_EQ(a.avgInstsInFlight, b.avgInstsInFlight);
    EXPECT_EQ(a.opnPackets, b.opnPackets);
    EXPECT_EQ(a.localBypasses, b.localBypasses);
    for (size_t c = 0; c < a.opnHops.size(); ++c)
        EXPECT_EQ(a.opnHops[c].samples(), b.opnHops[c].samples());
}

} // namespace

// ---------------------------------------------------------------------
// The port extraction is a restructuring, not a timing change.
// ---------------------------------------------------------------------

TEST(ChipSim, OneCoreChipBitIdenticalToSoloCycleSim)
{
    Module mod;
    buildMemStress(mod, 97, 3000);
    auto prog = compiler::compileToTrips(mod,
                                         compiler::Options::compiled());
    uarch::ChipConfig ccfg;
    ccfg.numCores = 1;
    ASSERT_EQ(ccfg.validate(), "");

    SoloRun solo = runSolo(prog, mod, ccfg.core);

    MemImage chip_mem;
    wir::Interp::loadGlobals(mod, chip_mem);
    uarch::ChipSim chip({{&prog, &chip_mem}}, ccfg);
    auto cr = chip.run();

    ASSERT_EQ(cr.cores.size(), 1u);
    expectSameUarch(cr.cores[0], solo.res);
    EXPECT_EQ(cr.cycles, solo.res.cycles);
    // No second core: cross-core contention cannot exist.
    EXPECT_EQ(cr.uncore.bankConflicts, 0u);
    EXPECT_EQ(cr.uncore.bankConflictCycles, 0u);
}

// ---------------------------------------------------------------------
// Dual-core mixes: architectural equality, measurable contention,
// deterministic replay.
// ---------------------------------------------------------------------

TEST(ChipSim, DualCoreMixMatchesSoloArchitecturallyAndContends)
{
    Module ma, mb;
    buildMemStress(ma, 97, 3000);
    buildMemStress(mb, 193, 3000);
    auto pa = compiler::compileToTrips(ma, compiler::Options::compiled());
    auto pb = compiler::compileToTrips(mb, compiler::Options::compiled());

    uarch::ChipConfig ccfg = uarch::ChipConfig::prototype();
    SoloRun sa = runSolo(pa, ma, ccfg.core);
    SoloRun sb = runSolo(pb, mb, ccfg.core);

    auto runChip = [&]() {
        MemImage mem_a, mem_b;
        wir::Interp::loadGlobals(ma, mem_a);
        wir::Interp::loadGlobals(mb, mem_b);
        uarch::ChipSim chip({{&pa, &mem_a}, {&pb, &mem_b}}, ccfg);
        auto cr = chip.run();
        // Architectural equality with the solo runs, byte for byte.
        EXPECT_EQ(cr.cores[0].retVal, sa.res.retVal);
        EXPECT_EQ(cr.cores[1].retVal, sb.res.retVal);
        EXPECT_EQ(harness::compareDataSegments(ma, sa.mem, mem_a,
                                               "core0"), "");
        EXPECT_EQ(harness::compareDataSegments(mb, sb.mem, mem_b,
                                               "core1"), "");
        EXPECT_EQ(cr.cores[0].blocksCommitted, sa.res.blocksCommitted);
        EXPECT_EQ(cr.cores[1].blocksCommitted, sb.res.blocksCommitted);
        return cr;
    };

    auto cr1 = runChip();

    // Contention is measurable: the shared banks saw cross-core
    // conflicts, at least one core got slower, and the shared L2
    // served more misses than the solo runs combined (the mix evicts
    // lines the solo runs kept).
    EXPECT_GT(cr1.uncore.bankConflicts, 0u);
    EXPECT_GE(cr1.cores[0].cycles, sa.res.cycles);
    EXPECT_GE(cr1.cores[1].cycles, sb.res.cycles);
    EXPECT_GT(cr1.cores[0].cycles + cr1.cores[1].cycles,
              sa.res.cycles + sb.res.cycles);
    EXPECT_GT(cr1.cores[0].l2Misses + cr1.cores[1].l2Misses,
              sa.res.l2Misses + sb.res.l2Misses);
    // The uncore's view balances against the per-core counters.
    EXPECT_EQ(cr1.uncore.l2Hits + cr1.uncore.l2Misses,
              cr1.cores[0].l2Hits + cr1.cores[0].l2Misses +
                  cr1.cores[1].l2Hits + cr1.cores[1].l2Misses);
    EXPECT_GT(cr1.ocnOccupancy, 0.0);
    EXPECT_GT(cr1.ocn.packets[static_cast<size_t>(
                  net::OcnClass::Writeback)], 0u);

    // Determinism: an identical mix reproduces every statistic.
    auto cr2 = runChip();
    EXPECT_EQ(cr1.cycles, cr2.cycles);
    EXPECT_EQ(cr1.uncore.bankConflicts, cr2.uncore.bankConflicts);
    EXPECT_EQ(cr1.uncore.bankConflictCycles,
              cr2.uncore.bankConflictCycles);
    EXPECT_EQ(cr1.ocn.totalPackets(), cr2.ocn.totalPackets());
    expectSameUarch(cr1.cores[0], cr2.cores[0]);
    expectSameUarch(cr1.cores[1], cr2.cores[1]);
}

TEST(ChipSim, SameWorkloadOnBothCoresStaysArchitecturallyCorrect)
{
    // Both cores run the same Program object: exercises shared
    // read-only program state and the per-core physical striding
    // (identical virtual addresses, disjoint physical lines).
    const auto &w = workloads::find("vadd");
    Module mod;
    w.build(mod);
    auto prog = compiler::compileToTrips(mod,
                                         compiler::Options::compiled());
    uarch::ChipConfig ccfg = uarch::ChipConfig::prototype();
    SoloRun solo = runSolo(prog, mod, ccfg.core);

    MemImage mem_a, mem_b;
    wir::Interp::loadGlobals(mod, mem_a);
    wir::Interp::loadGlobals(mod, mem_b);
    uarch::ChipSim chip({{&prog, &mem_a}, {&prog, &mem_b}}, ccfg);
    auto cr = chip.run();
    for (unsigned c = 0; c < 2; ++c) {
        EXPECT_EQ(cr.cores[c].retVal, solo.res.retVal);
        EXPECT_GE(cr.cores[c].cycles, solo.res.cycles);
        EXPECT_EQ(cr.cores[c].blocksCommitted, solo.res.blocksCommitted);
    }
    // Striding means no constructive tag sharing: each core misses at
    // least as much as it did alone.
    EXPECT_GE(cr.cores[0].l2Misses + cr.cores[1].l2Misses,
              2 * solo.res.l2Misses);
}

// ---------------------------------------------------------------------
// MemorySystem unit behavior.
// ---------------------------------------------------------------------

TEST(MemorySystem, ContentionIsCrossCoreOnly)
{
    mem::MemorySystemConfig mc;
    mc.numCores = 2;
    ASSERT_EQ(mc.validate(), "");
    mem::MemorySystem ms(mc);

    auto read = [&](unsigned core, Addr addr, Cycle now) {
        mem::MemRequest rq;
        rq.addr = addr;
        rq.coreId = static_cast<u8>(core);
        return ms.access(rq, now);
    };

    // A core hammering one bank in the same cycle never queues behind
    // itself (the single-core model never modeled self-queuing).
    Addr bank0_line = 0;
    auto r1 = read(0, bank0_line, 100);
    auto r2 = read(0, bank0_line + 1024 * 1024, 100);
    EXPECT_EQ(r1.queuedCycles, 0u);
    EXPECT_EQ(r2.queuedCycles, 0u);
    EXPECT_EQ(ms.stats().bankConflicts, 0u);

    // The other core touching the same bank in the same cycle queues.
    auto r3 = read(1, bank0_line, 100);
    EXPECT_GT(r3.queuedCycles, 0u);
    EXPECT_EQ(ms.stats().bankConflicts, 1u);
    EXPECT_EQ(ms.stats().conflictsByCore[1], 1u);

    // Far enough apart in time, no conflict.
    auto r4 = read(1, bank0_line, 500);
    EXPECT_EQ(r4.queuedCycles, 0u);
    EXPECT_EQ(ms.stats().bankConflicts, 1u);
}

TEST(MemorySystem, SoloLatencyMatchesHistoricalNucaFormula)
{
    // One core, cold caches: completion = now + l2BaseLatency +
    // l2NucaStep * ((bank/4)+(bank%4)) + srcBank + DRAM (miss), and a
    // second access to the same line hits with no DRAM term.
    uarch::UarchConfig ucfg;
    mem::MemorySystem ms(uarch::uncoreConfig(ucfg));
    for (unsigned bank = 0; bank < 16; ++bank) {
        Addr addr = static_cast<Addr>(bank) * 64;
        mem::MemRequest rq;
        rq.addr = addr;
        rq.srcBank = static_cast<u8>(bank % 4);
        ms.access(rq, 1000);     // cold miss warms the line
        auto hit = ms.access(rq, 2000);
        ASSERT_TRUE(hit.l2Hit);
        unsigned dist = (bank / 4) + (bank % 4);
        Cycle lat = ucfg.l2BaseLatency + ucfg.l2NucaStep * dist +
                    (bank % 4);
        EXPECT_EQ(hit.done, 2000 + lat) << "bank " << bank;
    }
}

TEST(MemorySystem, DirtyLineDrainIsIdempotent)
{
    mem::MemorySystemConfig mc;
    mc.numCores = 2;
    mem::MemorySystem ms(mc);

    // Write-allocate three lines dirty in different banks.
    for (unsigned i = 0; i < 3; ++i) {
        mem::MemRequest rq;
        rq.addr = static_cast<Addr>(i) * 64;
        rq.isWrite = true;
        rq.cls = net::OcnClass::WriteReq;
        ms.access(rq, 10);
    }
    u64 wb_before = ms.stats().l2Writebacks;
    EXPECT_EQ(ms.drainDirtyLines(), 3u);
    EXPECT_EQ(ms.stats().l2Writebacks, wb_before + 3);
    EXPECT_EQ(ms.drainDirtyLines(), 0u);     // already clean

    // An absorbed L1 victim re-dirties a resident line.
    ms.noteL1Writeback(0, 0, 64);
    EXPECT_EQ(ms.drainDirtyLines(), 1u);
}

TEST(MemorySystem, PhysicalStridingSeparatesCores)
{
    mem::MemorySystemConfig mc;
    mc.numCores = 2;
    mem::MemorySystem ms(mc);

    // Core 0 warms a line; the same virtual line from core 1 must
    // miss (disjoint physical ranges), then hit once warmed itself.
    mem::MemRequest rq;
    rq.addr = 0x4000;
    rq.coreId = 0;
    ms.access(rq, 10);
    auto again0 = ms.access(rq, 200);
    EXPECT_TRUE(again0.l2Hit);
    rq.coreId = 1;
    auto first1 = ms.access(rq, 400);
    EXPECT_FALSE(first1.l2Hit);
    auto again1 = ms.access(rq, 600);
    EXPECT_TRUE(again1.l2Hit);
}

TEST(CacheDirtyLines, IterationAndMarkDirty)
{
    mem::Cache c(mem::CacheConfig{1024, 2, 64});
    EXPECT_TRUE(c.dirtyLines().empty());
    c.access(0x100, true);
    c.access(0x200, false);
    c.access(0x300, true);
    auto dirty = c.dirtyLines();
    ASSERT_EQ(dirty.size(), 2u);
    // Line-aligned reconstructed addresses.
    EXPECT_EQ(dirty[0] % 64, 0u);

    // markDirty on a present clean line flips it; on an absent line
    // reports absence and changes nothing.
    EXPECT_TRUE(c.markDirty(0x200));
    EXPECT_FALSE(c.markDirty(0x7000));
    EXPECT_EQ(c.dirtyLines().size(), 3u);

    // drainDirty clears but keeps contents resident.
    EXPECT_EQ(c.drainDirty().size(), 3u);
    EXPECT_TRUE(c.dirtyLines().empty());
    EXPECT_TRUE(c.probe(0x100));
}

// ---------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------

TEST(ChipConfigValidation, RejectsImpossibleChips)
{
    EXPECT_EQ(uarch::ChipConfig::prototype().validate(), "");
    auto bad = [](auto mut) {
        uarch::ChipConfig c;
        mut(c);
        return c.validate();
    };
    EXPECT_NE(bad([](auto &c) { c.numCores = 0; }), "");
    EXPECT_NE(bad([](auto &c) { c.numCores = 17; }), "");
    EXPECT_NE(bad([](auto &c) { c.bankServicePeriod = 0; }), "");
    EXPECT_NE(bad([](auto &c) { c.physStride = 0; }), "");
    EXPECT_NE(bad([](auto &c) { c.physStride = 12345; }), "");
    EXPECT_NE(bad([](auto &c) { c.core.numFrames = 0; }), "");
    EXPECT_NE(bad([](auto &c) { c.quantum = 0; }), "");

    // Every core count the OCN attach table holds is now legal (the
    // pre-PR-9 chip stopped at 8).
    for (unsigned n = 1; n <= 16; ++n)
        EXPECT_EQ(bad([n](auto &c) { c.numCores = n; }), "")
            << "numCores=" << n;

    mem::MemorySystemConfig mc;
    mc.numBanks = 48;
    EXPECT_NE(mc.validate(), "");
    mc = mem::MemorySystemConfig{};
    mc.l2Bank.assoc = 0;
    EXPECT_NE(mc.validate(), "");
}

TEST(ChipConfigValidation, RejectsPhysicalAddressMapOverflow)
{
    // 16 cores x 1GB stride exactly fills the default 34-bit map;
    // shrinking the map (or growing the stride) must fatal with a
    // message naming the limit, because the upper cores' strided
    // ranges would wrap and alias the lower cores' lines.
    uarch::ChipConfig c;
    c.numCores = 16;
    EXPECT_EQ(c.validate(), "");

    c.physAddrBits = 33;               // 8GB: only 8 cores fit at 1GB
    std::string err = c.validate();
    EXPECT_NE(err, "");
    EXPECT_NE(err.find("physical address map"), std::string::npos) << err;
    EXPECT_NE(err.find("33-bit"), std::string::npos) << err;

    c.numCores = 8;
    EXPECT_EQ(c.validate(), "");

    c.physStride = Addr{1} << 31;      // 8 cores x 2GB > 8GB
    EXPECT_NE(c.validate(), "");

    // And out-of-range map widths are themselves rejected.
    c = uarch::ChipConfig{};
    c.physAddrBits = 8;
    EXPECT_NE(c.validate(), "");
}

TEST(OcnAttachPoints, GridMappingIsDistinctAndPreservesPrototype)
{
    using net::OcnModel;
    // Core 0 and 1 keep the historical mirrored corner profiles
    // bit-identically (the N=2 timing pins depend on it).
    EXPECT_EQ(OcnModel::attachPoint(0), (std::pair<unsigned, unsigned>{0, 0}));
    EXPECT_EQ(OcnModel::attachPoint(1), (std::pair<unsigned, unsigned>{3, 3}));

    net::OcnConfig oc;
    OcnModel ocn(oc, 16);
    for (unsigned bank = 0; bank < 16; ++bank) {
        unsigned row = bank / 4, col = bank % 4;
        EXPECT_EQ(ocn.requestHops(0, bank), row + col);
        EXPECT_EQ(ocn.requestHops(1, bank), (3 - row) + (3 - col));
    }

    // Regression for the even/odd corner mirroring: every core now
    // owns a distinct attach cell (pre-PR-9, cores 2/4/6.. all sat on
    // core 0's corner and 3/5/7.. on core 1's).
    std::set<std::pair<unsigned, unsigned>> seen;
    for (unsigned core = 0; core < 16; ++core) {
        auto at = OcnModel::attachPoint(core);
        EXPECT_LT(at.first, 4u);
        EXPECT_LT(at.second, 4u);
        EXPECT_TRUE(seen.insert(at).second)
            << "cores share attach point (" << at.first << ","
            << at.second << ")";
    }

    // Hop distances from any attach point stay within the 4x4 mesh
    // diameter, so the NUCA latency bound is unchanged.
    for (unsigned core = 0; core < 16; ++core)
        for (unsigned bank = 0; bank < 16; ++bank)
            EXPECT_LE(ocn.requestHops(core, bank), 6u);
}

TEST(ChipConfigValidation, ChipSimThrowsOnBadConfigOrJobs)
{
    Module mod;
    buildMemStress(mod, 97, 8);
    auto prog = compiler::compileToTrips(mod,
                                         compiler::Options::compiled());
    MemImage mem;
    wir::Interp::loadGlobals(mod, mem);

    // Since PR 6 an impossible chip is a catchable TripsError so a
    // config sweep survives a bad point instead of dying mid-run.
    uarch::ChipConfig bad;
    bad.numCores = 0;
    try {
        uarch::ChipSim sim({{&prog, &mem}}, bad);
        ADD_FAILURE() << "ChipSim accepted numCores=0";
    } catch (const TripsError &e) {
        EXPECT_EQ(e.code(), ErrCode::InvalidConfig);
        EXPECT_EQ(e.status().subsys, Subsys::Uarch);
    }

    uarch::ChipConfig two;
    two.numCores = 2;
    try {
        uarch::ChipSim sim({{&prog, &mem}, {&prog, &mem},
                            {&prog, &mem}}, two);
        ADD_FAILURE() << "ChipSim accepted 3 jobs on 2 cores";
    } catch (const TripsError &e) {
        EXPECT_EQ(e.code(), ErrCode::InvalidConfig);
        EXPECT_NE(e.status().message.find("3 jobs"), std::string::npos);
    }
}

// ---------------------------------------------------------------------
// The chip-mode differential oracle itself.
// ---------------------------------------------------------------------

TEST(ChipDiff, GeneratedPairsMatchTheirSoloRuns)
{
    // 6 pairs under TRIPSIM_SLOW_TESTS (the `slow` ctest label), a
    // bounded prefix of the same pairs by default.
    for (u64 i = 0; i < testutil::slowScale(3, 6); ++i) {
        auto r = harness::diffChipPair(harness::taskSeed(77, 2 * i),
                                       harness::taskSeed(77, 2 * i + 1));
        EXPECT_TRUE(r.ok) << r.divergence << "\n  " << r.reproCmd();
        EXPECT_TRUE(r.chip);
    }
}
