/**
 * @file
 * Cross-model validation of every registered workload: the TRIPS
 * compiled binary (functional sim), the hand preset, the RISC gcc/icc
 * binaries, and the cycle-level model must all reproduce the WIR
 * interpreter's result. This is the repository's master property test.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/machines.hh"
#include "harness/diff.hh"

using namespace trips;
using workloads::Workload;

namespace {

class WorkloadTest : public ::testing::TestWithParam<const Workload *>
{
};

} // namespace

TEST_P(WorkloadTest, TripsCompiledMatchesGolden)
{
    const Workload &w = *GetParam();
    i64 golden = core::runGolden(w);
    auto run = core::runTrips(w, compiler::Options::compiled(), false);
    EXPECT_EQ(run.retVal, golden);
    EXPECT_GT(run.isa.blocks, 0u);
    EXPECT_GT(run.isa.useful, 0u);
    // Block size within architectural limits.
    EXPECT_LE(run.isa.meanBlockSize(), 128.0);
}

TEST_P(WorkloadTest, TripsHandMatchesGolden)
{
    const Workload &w = *GetParam();
    if (!w.isSimple)
        GTEST_SKIP() << "hand preset only used for the Simple suite";
    i64 golden = core::runGolden(w);
    auto run = core::runTrips(w, compiler::Options::hand(), false);
    EXPECT_EQ(run.retVal, golden);
}

TEST_P(WorkloadTest, RiscMatchesGolden)
{
    const Workload &w = *GetParam();
    i64 golden = core::runGolden(w);
    auto g = core::runRisc(w, risc::RiscOptions::gcc());
    EXPECT_EQ(g.retVal, golden);
    auto i = core::runRisc(w, risc::RiscOptions::icc());
    EXPECT_EQ(i.retVal, golden);
}

TEST_P(WorkloadTest, FinalMemoryMatchesGoldenByteForByte)
{
    // Return values can collude (a checksum can survive a wrong
    // intermediate); the data segment cannot. Every Table 2 workload's
    // final memory image must equal the interpreter's on the RISC and
    // TRIPS functional models.
    const Workload &w = *GetParam();
    wir::Module mod;
    w.build(mod);

    MemImage goldenMem;
    auto golden = core::runGolden(mod, &goldenMem);
    ASSERT_FALSE(golden.fuelExhausted);

    MemImage riscMem;
    auto r = core::runRisc(mod, risc::RiscOptions::gcc(), &riscMem);
    ASSERT_FALSE(r.fuelExhausted);
    EXPECT_EQ(r.retVal, golden.retVal);
    EXPECT_EQ(harness::compareDataSegments(mod, goldenMem, riscMem,
                                           "risc/gcc"),
              "");

    MemImage funcMem;
    auto t = core::runTrips(mod, compiler::Options::compiled(), false,
                            uarch::UarchConfig{}, &funcMem, nullptr);
    ASSERT_FALSE(t.funcFuelExhausted);
    EXPECT_EQ(t.retVal, golden.retVal);
    EXPECT_EQ(harness::compareDataSegments(mod, goldenMem, funcMem,
                                           "trips/func"),
              "");
}

TEST_P(WorkloadTest, CycleLevelMatchesGolden)
{
    const Workload &w = *GetParam();
    i64 golden = core::runGolden(w);
    auto run = core::runTrips(w, compiler::Options::compiled(), true);
    EXPECT_EQ(run.retVal, golden);
    EXPECT_EQ(run.uarch.retVal, golden);
    EXPECT_FALSE(run.uarch.fuelExhausted);
    EXPECT_GT(run.uarch.ipc(), 0.0);
}

namespace {

std::vector<const Workload *>
allWorkloadPtrs()
{
    std::vector<const Workload *> out;
    for (const auto &w : workloads::all())
        out.push_back(&w);
    return out;
}

std::string
workloadName(const ::testing::TestParamInfo<const Workload *> &info)
{
    std::string n = info.param->name;
    for (auto &c : n) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return n;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::ValuesIn(allWorkloadPtrs()),
                         workloadName);

// ---------------------------------------------------------------------
// Table 2 completeness: the registry carries every suite member the
// paper's evaluation names, so the parameterized cross-model tests
// above are guaranteed to cover all of Table 2 — a silently dropped
// workload would fail here, not just shrink the test count.
// ---------------------------------------------------------------------

TEST(Table2, EverySuiteMemberIsRegistered)
{
    const std::map<std::string, std::set<std::string>> expected = {
        {"kernel", {"vadd", "ct", "conv", "matrix"}},
        {"versa", {"fmradio", "802.11a", "8b10b"}},
        {"eembc",
         {"a2time", "rspeed", "ospf", "routelookup", "autocor", "conven",
          "fbital", "fft", "bitmnp", "idctrn"}},
        {"specint",
         {"bzip2", "crafty", "gcc", "gzip", "mcf", "parser", "perlbmk",
          "twolf", "vortex", "vpr"}},
        {"specfp",
         {"applu", "apsi", "art", "equake", "mesa", "mgrid", "swim",
          "wupwise"}},
        {"blas",
         {"axpy", "axpy_unroll", "dot", "dot_unroll", "gemv",
          "gemv_tiled", "matmul", "matmul_tiled",
          "matmul_tiled_unroll"}},
    };
    size_t total = 0;
    for (const auto &[suite, members] : expected) {
        std::set<std::string> got;
        for (const auto *w : workloads::suite(suite))
            got.insert(w->name);
        EXPECT_EQ(got, members) << "suite " << suite;
        total += members.size();
    }
    EXPECT_EQ(workloads::all().size(), total);
    EXPECT_EQ(workloads::simpleSuite().size(), 15u);
}
