/**
 * @file
 * Cross-model validation of every registered workload: the TRIPS
 * compiled binary (functional sim), the hand preset, the RISC gcc/icc
 * binaries, and the cycle-level model must all reproduce the WIR
 * interpreter's result. This is the repository's master property test.
 */

#include <gtest/gtest.h>

#include "core/machines.hh"

using namespace trips;
using workloads::Workload;

namespace {

class WorkloadTest : public ::testing::TestWithParam<const Workload *>
{
};

} // namespace

TEST_P(WorkloadTest, TripsCompiledMatchesGolden)
{
    const Workload &w = *GetParam();
    i64 golden = core::runGolden(w);
    auto run = core::runTrips(w, compiler::Options::compiled(), false);
    EXPECT_EQ(run.retVal, golden);
    EXPECT_GT(run.isa.blocks, 0u);
    EXPECT_GT(run.isa.useful, 0u);
    // Block size within architectural limits.
    EXPECT_LE(run.isa.meanBlockSize(), 128.0);
}

TEST_P(WorkloadTest, TripsHandMatchesGolden)
{
    const Workload &w = *GetParam();
    if (!w.isSimple)
        GTEST_SKIP() << "hand preset only used for the Simple suite";
    i64 golden = core::runGolden(w);
    auto run = core::runTrips(w, compiler::Options::hand(), false);
    EXPECT_EQ(run.retVal, golden);
}

TEST_P(WorkloadTest, RiscMatchesGolden)
{
    const Workload &w = *GetParam();
    i64 golden = core::runGolden(w);
    auto g = core::runRisc(w, risc::RiscOptions::gcc());
    EXPECT_EQ(g.retVal, golden);
    auto i = core::runRisc(w, risc::RiscOptions::icc());
    EXPECT_EQ(i.retVal, golden);
}

TEST_P(WorkloadTest, CycleLevelMatchesGolden)
{
    const Workload &w = *GetParam();
    i64 golden = core::runGolden(w);
    auto run = core::runTrips(w, compiler::Options::compiled(), true);
    EXPECT_EQ(run.retVal, golden);
    EXPECT_EQ(run.uarch.retVal, golden);
    EXPECT_FALSE(run.uarch.fuelExhausted);
    EXPECT_GT(run.uarch.ipc(), 0.0);
}

namespace {

std::vector<const Workload *>
allWorkloadPtrs()
{
    std::vector<const Workload *> out;
    for (const auto &w : workloads::all())
        out.push_back(&w);
    return out;
}

std::string
workloadName(const ::testing::TestParamInfo<const Workload *> &info)
{
    std::string n = info.param->name;
    for (auto &c : n) {
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    }
    return n;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadTest,
                         ::testing::ValuesIn(allWorkloadPtrs()),
                         workloadName);
