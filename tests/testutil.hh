/**
 * @file
 * Shared test helpers.
 *
 * slowScale() implements the two-tier suite split: expensive sweeps
 * run with a bounded iteration count by default (the tier-1 `ctest`
 * budget stays roughly flat as suites grow) and at full scale when
 * TRIPSIM_SLOW_TESTS is set — which the `slow`-labeled ctest entries
 * do (configure with -DTRIPSIM_SLOW_TESTS=ON, run `ctest -L slow`).
 */

#ifndef TRIPSIM_TESTS_TESTUTIL_HH
#define TRIPSIM_TESTS_TESTUTIL_HH

#include <cstdlib>

#include "support/common.hh"

namespace trips::testutil {

inline bool
slowTestsEnabled()
{
    const char *e = std::getenv("TRIPSIM_SLOW_TESTS");
    return e && *e && *e != '0';
}

/** @return @p full under TRIPSIM_SLOW_TESTS, else @p bounded. */
inline u64
slowScale(u64 bounded, u64 full)
{
    return slowTestsEnabled() ? full : bounded;
}

} // namespace trips::testutil

#endif // TRIPSIM_TESTS_TESTUTIL_HH
