/**
 * @file
 * RISC backend tests: compiled RISC code must reproduce the WIR
 * interpreter's results, including under register pressure (spills),
 * calls, and unrolling; counters must be self-consistent.
 */

#include <gtest/gtest.h>

#include "risc/core.hh"
#include "risc/wirtorisc.hh"
#include "support/rng.hh"
#include "wir/builder.hh"
#include "wir/interp.hh"

using namespace trips;
using wir::FunctionBuilder;
using wir::Module;

namespace {

void
checkRisc(Module &mod, const std::vector<std::string> &outs,
          const risc::RiscOptions &opts)
{
    MemImage ref_mem;
    wir::Interp::loadGlobals(mod, ref_mem);
    auto ref = wir::Interp{}.run(mod, ref_mem);
    ASSERT_FALSE(ref.fuelExhausted);

    auto prog = risc::compileToRisc(mod, opts);
    MemImage mem;
    wir::Interp::loadGlobals(mod, mem);
    risc::Core core(prog, mem);
    i64 rv = core.run();
    ASSERT_FALSE(core.fuelExhausted());

    EXPECT_EQ(rv, ref.retVal);
    for (const auto &g : outs) {
        const auto &gv = mod.global(g);
        for (u64 i = 0; i < gv.size; ++i) {
            ASSERT_EQ(mem.read8(gv.addr + i), ref_mem.read8(gv.addr + i))
                << "global " << g << " byte " << i;
        }
    }
}

void
checkBoth(Module &mod, const std::vector<std::string> &outs)
{
    {
        SCOPED_TRACE("gcc");
        checkRisc(mod, outs, risc::RiscOptions::gcc());
    }
    {
        SCOPED_TRACE("icc");
        checkRisc(mod, outs, risc::RiscOptions::icc());
    }
}

} // namespace

TEST(Risc, LoopWithMemory)
{
    Module mod;
    Addr arr = mod.addGlobal("arr", 128 * 8);
    FunctionBuilder fb(mod, "main", 0);
    auto base = fb.iconst(static_cast<i64>(arr));
    auto i = fb.iconst(0);
    fb.label("loop");
    fb.store(fb.add(base, fb.shli(i, 3)), fb.mul(i, i), 0);
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(128)), "loop", "done");
    fb.label("done");
    fb.ret(fb.load(base, 127 * 8));
    fb.finish();
    checkBoth(mod, {"arr"});
}

TEST(Risc, RegisterPressureSpills)
{
    // 30 simultaneously-live values exceed the 16 allocatable
    // registers and force spill code.
    Module mod;
    FunctionBuilder fb(mod, "main", 0);
    std::vector<wir::Vreg> vals;
    for (int k = 0; k < 30; ++k)
        vals.push_back(fb.muli(fb.iconst(k + 1), k + 3));
    auto acc = fb.iconst(0);
    for (int k = 0; k < 30; ++k)
        fb.assign(acc, fb.add(acc, fb.bxor(vals[k], vals[(k + 7) % 30])));
    fb.ret(acc);
    fb.finish();

    auto prog = risc::compileToRisc(mod, risc::RiscOptions::gcc());
    MemImage mem;
    risc::Core core(prog, mem);
    i64 rv = core.run();

    MemImage ref_mem;
    auto ref = wir::Interp{}.run(mod, ref_mem);
    EXPECT_EQ(rv, ref.retVal);
    // Spill traffic must show up as memory accesses.
    EXPECT_GT(core.counters().stores, 0u);
}

TEST(Risc, CallsAndRecursion)
{
    Module mod;
    {
        FunctionBuilder fb(mod, "fib", 1);
        auto n = fb.param(0);
        fb.br(fb.cmpLe(n, fb.iconst(1)), "base", "rec");
        fb.label("base");
        fb.ret(n);
        fb.label("rec");
        auto f1 = fb.call("fib", {fb.addi(n, -1)});
        auto f2 = fb.call("fib", {fb.addi(n, -2)});
        fb.ret(fb.add(f1, f2));
        fb.finish();
    }
    {
        FunctionBuilder fb(mod, "main", 0);
        fb.ret(fb.call("fib", {fb.iconst(15)}));
        fb.finish();
    }
    checkBoth(mod, {});
}

TEST(Risc, SelectDiamondFloat)
{
    Module mod;
    Addr out = mod.addGlobal("o", 8);
    FunctionBuilder fb(mod, "main", 0);
    auto x = fb.fconst(2.5);
    auto y = fb.fconst(7.25);
    auto m = fb.select(fb.fcmpLt(x, y), y, x);
    fb.store(fb.iconst(static_cast<i64>(out)), m, 0);
    fb.ret(fb.ftoi(fb.fmul(m, fb.fconst(4.0))));
    fb.finish();
    checkBoth(mod, {"o"});
}

TEST(Risc, CountersConsistent)
{
    Module mod;
    Addr arr = mod.addGlobal("a", 64 * 8);
    FunctionBuilder fb(mod, "main", 0);
    auto base = fb.iconst(static_cast<i64>(arr));
    auto i = fb.iconst(0);
    fb.label("loop");
    auto v = fb.load(fb.add(base, fb.shli(i, 3)), 0);
    fb.store(fb.add(base, fb.shli(i, 3)), fb.addi(v, 5), 0);
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(64)), "loop", "done");
    fb.label("done");
    fb.ret(i);
    fb.finish();

    auto prog = risc::compileToRisc(mod);
    MemImage mem;
    wir::Interp::loadGlobals(mod, mem);
    risc::Core core(prog, mem);
    core.run();
    const auto &c = core.counters();
    EXPECT_GE(c.loads, 64u);
    EXPECT_GE(c.stores, 64u);
    EXPECT_EQ(c.condBranches, 64u);
    EXPECT_EQ(c.takenCondBranches, 63u);
    EXPECT_GT(c.regReads, c.insts / 2);
    EXPECT_GT(c.regWrites, 0u);
}

TEST(Risc, UnrollingReducesBranches)
{
    auto build = [](Module &mod) {
        FunctionBuilder fb(mod, "main", 0);
        auto i = fb.iconst(0);
        auto acc = fb.iconst(0);
        fb.label("loop");
        fb.assign(acc, fb.add(acc, i));
        fb.assign(i, fb.addi(i, 1));
        fb.br(fb.cmpLt(i, fb.iconst(240)), "loop", "done");
        fb.label("done");
        fb.ret(acc);
        fb.finish();
    };
    Module m1, m2;
    build(m1);
    build(m2);
    auto pg = risc::compileToRisc(m1, risc::RiscOptions::gcc());
    auto pi = risc::compileToRisc(m2, risc::RiscOptions::icc());
    MemImage mem1, mem2;
    risc::Core c1(pg, mem1), c2(pi, mem2);
    i64 r1 = c1.run(), r2 = c2.run();
    EXPECT_EQ(r1, r2);
    // Generic unrolling clones the body (static growth) while
    // preserving per-iteration exit tests (no IV elimination).
    EXPECT_GT(pi.code.size(), pg.code.size());
    EXPECT_EQ(c1.counters().condBranches, c2.counters().condBranches);
}
