/**
 * @file
 * Robustness / resilience tests (DESIGN.md §8):
 *
 *  - Error taxonomy: Status formatting, transience classification,
 *    structured throw/catch plumbing.
 *  - Register pressure beyond the 116 allocatable registers is
 *    handled, not fatal: the historically allocator-exhausting fuzz
 *    seed (quarantined as a CompileError from PR 6 until the spill
 *    pass landed) now compiles through spill-to-memory, stays
 *    golden-equivalent across models, and no longer appears in a
 *    guarded sweep's quarantine ledger.
 *  - runGuarded: watchdog timeouts, transient-error retry with
 *    backoff, structured-failure capture.
 *  - Deterministic fault injection (sim/faultio): a matrix of >= 200
 *    injected I/O faults across checkpoint and campaign-cache paths,
 *    asserting the contract — every fault is a clean miss, a
 *    structured TripsError, or a counted degradation; never a crash,
 *    never a silently wrong result.
 *  - Campaign cache hygiene: corrupt/stale/degraded-write counters and
 *    fsck repair of a cache left behind by a mid-sweep kill.
 *  - Sampling accuracy tolerance: CPB spread beyond maxCpbSpread
 *    degrades gracefully to full detail.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/machines.hh"
#include "harness/diff.hh"
#include "harness/fuzzgen.hh"
#include "harness/guard.hh"
#include "harness/sweep.hh"
#include "sim/campaign.hh"
#include "sim/checkpoint.hh"
#include "sim/faultio.hh"
#include "sim/sampling.hh"
#include "support/error.hh"
#include "wir/interp.hh"
#include "workloads/workload.hh"

using namespace trips;
namespace fs = std::filesystem;

namespace {

/**
 * The pinned high-pressure fuzz shape: at this scale the generator
 * reliably produces functions whose cross-region live values exceed
 * the 116 general registers the allocator can assign, and seed
 * FATAL_SEED is a specific reproducer (found by sweeping). Before the
 * spill pass this was the repo's canonical fatal CompileError; now it
 * is the canonical proof that spilling turns that pressure into a
 * correct, golden-equivalent program.
 */
harness::ShapeConfig
fatalShape()
{
    harness::ShapeConfig s;
    s.helperFuncs = 3;
    s.topStmts = 120;
    s.bodyStmts = 10;
    s.maxDepth = 2;
    return s;
}

constexpr u64 FATAL_SEED = 16;

/** Sweep base chosen (by inverting taskSeed's splitmix64) so that
 *  taskSeed(FATAL_BASE, 0) == FATAL_SEED: a guarded sweep from this
 *  base meets the high-pressure program at index 0. */
constexpr u64 FATAL_BASE = 17707284481778151765ULL;

/** Fresh scratch directory under the system temp dir. */
std::string
scratchDir(const char *tag)
{
    fs::path p = fs::temp_directory_path() /
                 (std::string("tripsim_robust_") + tag);
    fs::remove_all(p);
    fs::create_directories(p);
    return p.string();
}

std::string
scratchFile(const char *name)
{
    fs::path p = fs::temp_directory_path() / name;
    fs::remove(p);
    return p.string();
}

/** A small deterministic checkpoint to push through faulty I/O. */
sim::Checkpoint
smallCheckpoint()
{
    wir::Module mod;
    workloads::find("vadd").build(mod);
    auto prog = compiler::compileToTrips(mod,
                                         compiler::Options::compiled());
    MemImage mem;
    wir::Interp::loadGlobals(mod, mem);
    sim::FuncSim fsim(prog, mem);
    fsim.run(50);
    sim::Checkpoint ck;
    fsim.snapshot(ck);
    return ck;
}

/** Uninstall any fault plan even if a test body throws/fails. */
struct FaultioGuard
{
    ~FaultioGuard() { sim::faultio::uninstall(); }
};

} // namespace

// ---------------------------------------------------------------------
// Error taxonomy
// ---------------------------------------------------------------------

TEST(ErrorTaxonomy, StatusFormatsAndClassifies)
{
    Status ok = okStatus();
    EXPECT_TRUE(ok.ok());
    EXPECT_FALSE(ok.transient());

    Status st = makeStatus(ErrCode::CorruptData, Subsys::Sim,
                           "seal mismatch", "file.trun");
    EXPECT_FALSE(st.ok());
    EXPECT_FALSE(st.transient());
    EXPECT_EQ(st.str(), "sim: corrupt-data: seal mismatch [file.trun]");

    // Only I/O-ish failures are worth retrying.
    EXPECT_TRUE(makeStatus(ErrCode::IoError, Subsys::Sim, "x").transient());
    EXPECT_TRUE(makeStatus(ErrCode::NoSpace, Subsys::Sim, "x").transient());
    EXPECT_FALSE(
        makeStatus(ErrCode::Timeout, Subsys::Harness, "x").transient());
    EXPECT_FALSE(
        makeStatus(ErrCode::InvalidConfig, Subsys::Uarch, "x").transient());

    EXPECT_STREQ(errCodeName(ErrCode::ResourceExhausted),
                 "resource-exhausted");
    EXPECT_STREQ(subsysName(Subsys::Compiler), "compiler");
}

TEST(ErrorTaxonomy, ThrowMacroCarriesCodeAndContext)
{
    try {
        TRIPS_THROW(ErrCode::InvalidArgument, Subsys::Support,
                    "bad knob ", 42);
        FAIL() << "TRIPS_THROW did not throw";
    } catch (const TripsError &e) {
        EXPECT_EQ(e.code(), ErrCode::InvalidArgument);
        EXPECT_EQ(e.status().subsys, Subsys::Support);
        EXPECT_NE(e.status().message.find("bad knob 42"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("invalid-argument"),
                  std::string::npos);
    }
}

TEST(ErrorTaxonomy, CompileErrorIsACatchableTripsError)
{
    CompileError ce(ErrCode::ResourceExhausted, "out of registers",
                    "main");
    EXPECT_EQ(ce.status().subsys, Subsys::Compiler);
    EXPECT_EQ(ce.code(), ErrCode::ResourceExhausted);
    // Campaign drivers catch the base class.
    try {
        throw CompileError(ErrCode::Internal, "x");
    } catch (const TripsError &e) {
        EXPECT_EQ(e.status().subsys, Subsys::Compiler);
    }
}

// ---------------------------------------------------------------------
// Register pressure beyond 116: the historically fatal seed now spills
// ---------------------------------------------------------------------

TEST(RegallocExhaustion, PinnedFuzzSeedCompilesViaSpilling)
{
    auto mod = harness::generate(FATAL_SEED, fatalShape());
    compiler::CompileStats cs;
    // Must not throw: pressure beyond 116 is the spill pass's job now.
    compiler::compileToTrips(mod, compiler::Options::compiled(), &cs);

    // And it must have been the spill pass that saved it, not luck.
    EXPECT_GT(cs.spilledValues, 0u);
    EXPECT_GT(cs.spillSlots, 0u);
    EXPECT_GT(cs.spillLoads, 0u);
    EXPECT_GT(cs.spillStores, 0u);
    EXPECT_GE(cs.spillRounds, 1u);
}

TEST(RegallocExhaustion, PinnedFuzzSeedIsGoldenEquivalentAcrossModels)
{
    // The full 6-model differential oracle, with the TIL verifier on:
    // spilled code must not just run, it must agree with the WIR
    // interpreter and every simulator tier bit-for-bit.
    harness::DiffOptions opts;
    opts.verifyTil = true;
    auto r = harness::diffOne(FATAL_SEED, fatalShape(), opts);
    EXPECT_TRUE(r.ok) << r.divergence << "\nrepro: " << r.reproCmd();
}

TEST(RegallocExhaustion, GuardedSweepNoLongerQuarantinesTheSeed)
{
    ASSERT_EQ(harness::taskSeed(FATAL_BASE, 0), FATAL_SEED)
        << "taskSeed mapping changed; recompute FATAL_BASE";

    std::string ledgerPath =
        scratchFile("tripsim_robust_quarantine.jsonl");
    harness::QuarantineLedger ledger(ledgerPath);
    harness::SweepPool pool(1);
    harness::GuardConfig gcfg;  // no watchdog: guard = classification
    auto res = harness::sweepDiffGuarded(pool, FATAL_BASE, 2,
                                         fatalShape(), {}, gcfg, ledger);

    // Both tasks complete; nothing is quarantined, nothing diverges,
    // and the ledger stays empty — seed 16 is an ordinary seed now.
    EXPECT_EQ(res.quarantined, 0u);
    EXPECT_EQ(res.completed, 2u);
    EXPECT_EQ(res.timeouts, 0u);
    EXPECT_TRUE(res.divergences.empty());
    EXPECT_EQ(ledger.entries(), 0u);

    std::ifstream in(ledgerPath);
    std::string line;
    while (std::getline(in, line))
        EXPECT_EQ(line.find("\"seed\":16"), std::string::npos) << line;
    fs::remove(ledgerPath);
}

// ---------------------------------------------------------------------
// runGuarded: watchdog, retry, classification
// ---------------------------------------------------------------------

TEST(Guard, SuccessNeedsOneAttempt)
{
    auto o = harness::runGuarded({}, [] {});
    EXPECT_TRUE(o.ok);
    EXPECT_FALSE(o.timedOut);
    EXPECT_EQ(o.attempts, 1u);
}

TEST(Guard, StructuredFailureIsCapturedNotRetried)
{
    harness::GuardConfig cfg;
    cfg.retries = 3;
    cfg.backoffBaseMs = 1;
    auto o = harness::runGuarded(cfg, [] {
        TRIPS_THROW(ErrCode::InvalidConfig, Subsys::Uarch, "bad chip");
    });
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.attempts, 1u);  // InvalidConfig is not transient
    EXPECT_EQ(o.error.code, ErrCode::InvalidConfig);
    EXPECT_EQ(o.error.subsys, Subsys::Uarch);
}

TEST(Guard, TransientErrorsRetryWithBackoffThenSucceed)
{
    harness::GuardConfig cfg;
    cfg.retries = 3;
    cfg.backoffBaseMs = 1;
    auto flaky = std::make_shared<std::atomic<int>>(0);
    auto o = harness::runGuarded(cfg, [flaky] {
        if (flaky->fetch_add(1) < 2)
            TRIPS_THROW(ErrCode::IoError, Subsys::Sim, "flaky disk");
    });
    EXPECT_TRUE(o.ok);
    EXPECT_EQ(o.attempts, 3u);
}

TEST(Guard, TransientErrorsGiveUpAfterRetriesExhausted)
{
    harness::GuardConfig cfg;
    cfg.retries = 2;
    cfg.backoffBaseMs = 1;
    auto o = harness::runGuarded(cfg, [] {
        TRIPS_THROW(ErrCode::NoSpace, Subsys::Sim, "disk full");
    });
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.attempts, 3u);  // 1 + 2 retries
    EXPECT_EQ(o.error.code, ErrCode::NoSpace);
}

TEST(Guard, ForeignExceptionsBecomeInternal)
{
    auto o = harness::runGuarded({}, [] {
        throw std::runtime_error("unexpected");
    });
    EXPECT_FALSE(o.ok);
    EXPECT_EQ(o.error.code, ErrCode::Internal);
    EXPECT_NE(o.error.message.find("unexpected"), std::string::npos);
}

TEST(Guard, WatchdogTimesOutStuckTasks)
{
    harness::GuardConfig cfg;
    cfg.timeoutMs = 50;
    cfg.retries = 5;  // timeouts must NOT be retried
    cfg.backoffBaseMs = 1;
    // The task captures nothing from this stack frame: its detached
    // thread may outlive the test body.
    auto o = harness::runGuarded(cfg, [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(400));
    });
    EXPECT_FALSE(o.ok);
    EXPECT_TRUE(o.timedOut);
    EXPECT_EQ(o.attempts, 1u);
    EXPECT_EQ(o.error.code, ErrCode::Timeout);
    // Let the detached sleeper drain before the process exits.
    std::this_thread::sleep_for(std::chrono::milliseconds(450));
}

TEST(Guard, WatchdogPassesFastTasks)
{
    harness::GuardConfig cfg;
    cfg.timeoutMs = 5000;
    auto o = harness::runGuarded(cfg, [] {});
    EXPECT_TRUE(o.ok);
    EXPECT_FALSE(o.timedOut);
}

// ---------------------------------------------------------------------
// Quarantine ledger
// ---------------------------------------------------------------------

TEST(QuarantineLedger, AppendsSelfContainedJsonLines)
{
    std::string path = scratchFile("tripsim_robust_ledger.jsonl");
    harness::QuarantineLedger ledger(path);
    EXPECT_TRUE(ledger.enabled());

    ledger.record(7, "funcs=1 top=2",
                  makeStatus(ErrCode::Timeout, Subsys::Harness,
                             "task exceeded deadline"),
                  "build/sweep_main --repro 7");
    ledger.record(9, "shape \"quoted\"",
                  makeStatus(ErrCode::CorruptData, Subsys::Sim,
                             "line1\nline2"),
                  "cmd");
    EXPECT_EQ(ledger.entries(), 2u);

    std::ifstream in(path);
    std::string l1, l2, extra;
    ASSERT_TRUE(std::getline(in, l1));
    ASSERT_TRUE(std::getline(in, l2));
    EXPECT_FALSE(std::getline(in, extra));

    // The deterministic prefix is pinned exactly; the trailing
    // elapsed_ms field is wall-clock so only its presence is checked.
    std::string prefix1 =
        "{\"seq\":1,\"seed\":7,\"shape\":\"funcs=1 top=2\","
        "\"subsys\":\"harness\",\"code\":\"timeout\","
        "\"message\":\"task exceeded deadline\","
        "\"repro\":\"build/sweep_main --repro 7\",\"elapsed_ms\":";
    EXPECT_EQ(l1.substr(0, prefix1.size()), prefix1) << l1;
    EXPECT_EQ(l1.back(), '}');
    // Records carry a monotonic sequence number.
    EXPECT_EQ(l2.substr(0, 9), "{\"seq\":2,") << l2;
    // Embedded quotes and newlines must stay on one escaped line.
    EXPECT_NE(l2.find("\\\"quoted\\\""), std::string::npos) << l2;
    EXPECT_NE(l2.find("line1\\nline2"), std::string::npos) << l2;
    EXPECT_NE(l2.find("\"elapsed_ms\":"), std::string::npos) << l2;
    fs::remove(path);
}

TEST(QuarantineLedger, DisabledLedgerOnlyCounts)
{
    harness::QuarantineLedger off;
    EXPECT_FALSE(off.enabled());
    off.record(1, "s", makeStatus(ErrCode::Internal, Subsys::Sim, "m"),
               "r");
    EXPECT_EQ(off.entries(), 1u);
}

TEST(QuarantineLedger, JsonEscapeHandlesControlCharacters)
{
    EXPECT_EQ(harness::jsonEscape("plain"), "plain");
    EXPECT_EQ(harness::jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(harness::jsonEscape("x\n\t\r"), "x\\n\\t\\r");
    EXPECT_EQ(harness::jsonEscape(std::string("\x01", 1)), "\\u0001");
}

// ---------------------------------------------------------------------
// Campaign cache hygiene: counters + fsck
// ---------------------------------------------------------------------

TEST(CacheHygiene, CorruptAndStaleMissesAreClassified)
{
    std::string dir = scratchDir("counters");
    wir::Module mod;
    workloads::find("vadd").build(mod);
    auto opts = compiler::Options::compiled();

    sim::Campaign c1(dir);
    auto ref = c1.runTrips(mod, opts, false);
    ASSERT_EQ(c1.cache().misses(), 1u);

    // Exactly one .trun entry; truncate it mid-payload.
    std::string entry;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".trun")
            entry = e.path().string();
    ASSERT_FALSE(entry.empty());
    std::vector<u8> bytes;
    ASSERT_TRUE(sim::readFile(entry, bytes));
    std::vector<u8> cut(bytes.begin(),
                        bytes.begin() + bytes.size() / 2);
    ASSERT_TRUE(sim::writeFileAtomic(entry, cut).ok());

    sim::Campaign c2(dir);
    auto r2 = c2.runTrips(mod, opts, false);
    EXPECT_EQ(r2.retVal, ref.retVal);  // re-ran, same answer
    EXPECT_EQ(c2.cache().hits(), 0u);
    EXPECT_EQ(c2.cache().misses(), 1u);
    EXPECT_EQ(c2.cache().corrupt(), 1u);
    EXPECT_EQ(c2.cache().stale(), 0u);

    // Replace with a CRC-intact record of the wrong magic: a *stale*
    // miss (an artifact of another format, not disk corruption). Must
    // clear the 24-byte minimum or it would classify as truncated.
    sim::ByteWriter w;
    w.u32v(0xdeadbeef);
    w.u32v(1);
    w.u64v(0);
    w.u64v(0);
    w.sealCrc();
    ASSERT_TRUE(sim::writeFileAtomic(entry, w.data()).ok());

    sim::Campaign c3(dir);
    auto r3 = c3.runTrips(mod, opts, false);
    EXPECT_EQ(r3.retVal, ref.retVal);
    EXPECT_EQ(c3.cache().corrupt(), 0u);
    EXPECT_EQ(c3.cache().stale(), 1u);

    // And the miss re-stored a good entry: warm hit again.
    sim::Campaign c4(dir);
    auto r4 = c4.runTrips(mod, opts, false);
    EXPECT_EQ(c4.cache().hits(), 1u);
    EXPECT_EQ(r4.retVal, ref.retVal);
    fs::remove_all(dir);
}

TEST(CacheHygiene, PriorEraCacheReadsAsStaleMissNotCorrupt)
{
    // The functional simulator's move to the pre-decoded engine bumped
    // SIM_VERSION to sim-3; entries recorded by the sim-2 (PR 7 era)
    // simulator must never be served. Pin the bump first: if this
    // string regresses, old-era entries share keys with current runs.
    ASSERT_STREQ(sim::SIM_VERSION, "tripsim-sim-3");

    std::string dir = scratchDir("prior-era");
    wir::Module mod;
    workloads::find("vadd").build(mod);
    auto opts = compiler::Options::compiled();

    sim::Campaign warm(dir);
    auto ref = warm.runTrips(mod, opts, false);
    std::string entry;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".trun")
            entry = e.path().string();
    ASSERT_FALSE(entry.empty());

    // Because SIM_VERSION is hashed into the key, a sim-2-era entry
    // lives under a filename today's keys never probe: an old-era
    // cache directory is all plain absent-file misses — re-simulate,
    // nothing counted corrupt. Model it by moving the entry aside.
    std::string aside = entry + ".old-era";
    fs::rename(entry, aside);
    sim::Campaign cold(dir);
    auto r1 = cold.runTrips(mod, opts, false);
    EXPECT_EQ(r1.retVal, ref.retVal);
    EXPECT_EQ(cold.cache().hits(), 0u);
    EXPECT_EQ(cold.cache().misses(), 1u);
    EXPECT_EQ(cold.cache().corrupt(), 0u);
    EXPECT_EQ(cold.cache().stale(), 0u);

    // Defense in depth for a key-regime change: if an intact old-era
    // record *does* land at a probed path (fabricate one by placing
    // the sim-2-style bytes under a different key's filename), the
    // embedded-key check must classify it as a *stale* miss — another
    // build's artifact, not disk corruption — and overwrite it.
    std::vector<u8> oldBytes;
    ASSERT_TRUE(sim::readFile(aside, oldBytes));
    std::string stem = fs::path(entry).stem().string();
    stem[0] = stem[0] == '0' ? '1' : '0';
    std::string foreign = dir + "/" + stem + ".trun";
    ASSERT_TRUE(sim::writeFileAtomic(foreign, oldBytes).ok());
    sim::CampaignCache probe(dir);
    sim::CacheKey fk;
    ASSERT_EQ(stem.size(), 32u);
    for (int i = 0; i < 16; ++i) {
        fk.hi = fk.hi << 4 |
                static_cast<u64>(std::stoi(stem.substr(i, 1), nullptr,
                                           16));
        fk.lo = fk.lo << 4 |
                static_cast<u64>(std::stoi(stem.substr(16 + i, 1),
                                           nullptr, 16));
    }
    core::TripsRun out;
    EXPECT_FALSE(probe.lookup(fk, out));
    EXPECT_EQ(probe.corrupt(), 0u);
    EXPECT_EQ(probe.stale(), 1u);
    fs::remove_all(dir);
}

TEST(CacheHygiene, WriteFailureDegradesToUncached)
{
    std::string dir = scratchDir("degraded");
    wir::Module mod;
    workloads::find("vadd").build(mod);
    auto opts = compiler::Options::compiled();

    sim::Campaign camp(dir);
    // Yank the directory out from under the cache: the store's temp
    // file cannot be created, which must degrade, not throw.
    fs::remove_all(dir);
    auto r = camp.runTrips(mod, opts, false);
    EXPECT_EQ(r.retVal, core::runGolden(mod, nullptr).retVal);
    EXPECT_EQ(camp.cache().degradedWrites(), 1u);
    EXPECT_EQ(camp.cache().misses(), 1u);
}

TEST(CacheHygiene, CampaignCtorThrowsWhenDirectoryCannotBeMade)
{
    // A path under a regular file can never become a directory.
    std::string blocker = scratchFile("tripsim_robust_blocker");
    std::ofstream(blocker) << "file";
    try {
        sim::CampaignCache cache(blocker + "/sub");
        FAIL() << "CampaignCache accepted an impossible directory";
    } catch (const TripsError &e) {
        EXPECT_EQ(e.code(), ErrCode::IoError);
    }
    fs::remove(blocker);
}

TEST(CacheHygiene, FsckRemovesCorruptEntriesAndOrphanedTemps)
{
    std::string dir = scratchDir("fsck");
    wir::Module mod;
    workloads::find("vadd").build(mod);
    auto opts = compiler::Options::compiled();

    sim::Campaign camp(dir);
    camp.runTrips(mod, opts, false);           // one good entry

    // A torn write that never completed: orphaned temp file.
    std::ofstream(dir + "/deadbeef.trun.tmp1234") << "partial";
    // A second entry whose seal is broken (simulated torn final write).
    std::ofstream(dir + "/" + std::string(32, '0') + ".trun")
        << "torn bytes";

    sim::CampaignCache cache(dir);
    auto rep = cache.fsck();
    EXPECT_EQ(rep.scanned, 2u);
    EXPECT_EQ(rep.okEntries, 1u);
    EXPECT_EQ(rep.removedCorrupt, 1u);
    EXPECT_EQ(rep.removedTmp, 1u);
    EXPECT_EQ(rep.str(),
              "cache-fsck: scanned=2 ok=1 removed-corrupt=1 "
              "removed-tmp=1");

    // The survivor still hits.
    sim::Campaign after(dir);
    after.runTrips(mod, opts, false);
    EXPECT_EQ(after.cache().hits(), 1u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------

TEST(FaultInjection, PlanIsDeterministicAcrossReplays)
{
    FaultioGuard cleanup;
    std::string path = scratchFile("tripsim_robust_det.bin");
    std::vector<u8> payload(256, 0xab);

    auto replay = [&] {
        sim::faultio::FaultPlan plan;
        plan.seed = 99;
        plan.period = 2;
        sim::faultio::install(plan);
        // Record only plan-determined facts: codes and read success.
        // (Error *messages* embed temp-file names built from a global
        // op counter that is intentionally not part of the plan.)
        std::vector<std::string> log;
        for (int i = 0; i < 64; ++i) {
            Status st = sim::writeFileAtomic(path, payload);
            std::vector<u8> back;
            bool rd = sim::readFile(path, back);
            log.push_back(std::string(errCodeName(st.code)) + "/" +
                          (rd ? "r" : "-"));
        }
        auto s = sim::faultio::stats();
        sim::faultio::uninstall();
        log.push_back(s.describe());
        return log;
    };

    auto a = replay(), b = replay();
    EXPECT_EQ(a, b);
    EXPECT_FALSE(sim::faultio::active());
    fs::remove(path);
}

TEST(FaultInjection, CheckpointPathSurvivesTwoHundredFaults)
{
    FaultioGuard cleanup;
    sim::Checkpoint ck = smallCheckpoint();
    std::string path = scratchFile("tripsim_robust_ck.trcp");

    sim::faultio::FaultPlan plan;
    plan.seed = 4242;
    plan.period = 2;
    sim::faultio::install(plan);

    u64 saves = 0, loads = 0, structuredErrs = 0;
    while (sim::faultio::stats().injected < 200) {
        bool saved = false;
        try {
            sim::saveCheckpoint(path, ck);
            saved = true;
            ++saves;
        } catch (const TripsError &e) {
            // Injected ENOSPC / rename failure: classified, transient.
            EXPECT_TRUE(e.status().transient()) << e.what();
            ++structuredErrs;
        }
        try {
            sim::Checkpoint back = sim::loadCheckpoint(path);
            // A load that *succeeds* must be the exact state we wrote:
            // torn/bit-flipped writes and flipped reads have to be
            // caught by the CRC seal, never returned as data.
            ++loads;
            EXPECT_EQ(back.nextBlock, ck.nextBlock);
            EXPECT_EQ(back.blocksExecuted, ck.blocksExecuted);
            EXPECT_EQ(back.regfile, ck.regfile);
            EXPECT_EQ(sim::diffMemImages(back.mem, ck.mem), "");
        } catch (const TripsError &e) {
            EXPECT_FALSE(e.status().message.empty());
            ++structuredErrs;
        }
        (void)saved;
    }
    auto s = sim::faultio::stats();
    sim::faultio::uninstall();

    EXPECT_GE(s.injected, 200u);
    EXPECT_GT(saves, 0u);
    EXPECT_GT(loads, 0u);
    EXPECT_GT(structuredErrs, 0u);
    // Every fault kind must have fired at least once at this scale.
    for (unsigned k = 1; k < sim::faultio::NUM_KINDS; ++k)
        EXPECT_GT(s.byKind[k], 0u)
            << sim::faultio::kindName(
                   static_cast<sim::faultio::Kind>(k));
    fs::remove(path);
}

TEST(FaultInjection, CampaignCacheNeverServesWrongResultsUnderFaults)
{
    FaultioGuard cleanup;
    std::string dir = scratchDir("faultcache");
    wir::Module mod;
    workloads::find("vadd").build(mod);
    auto opts = compiler::Options::compiled();

    // Clean reference result first.
    sim::Campaign clean;
    auto ref = clean.runTrips(mod, opts, false);

    sim::faultio::FaultPlan plan;
    plan.seed = 777;
    plan.period = 2;
    sim::faultio::install(plan);

    u64 runs = 0;
    for (int i = 0; i < 40; ++i) {
        // One Campaign per iteration, like one sweep worker per task.
        sim::Campaign camp(dir);
        auto r = camp.runTrips(mod, opts, false);
        ++runs;
        // The cache may miss, degrade, or hit — but the answer is
        // always the architecturally correct one.
        ASSERT_EQ(r.retVal, ref.retVal) << "iteration " << i;
        ASSERT_EQ(r.isa.blocks, ref.isa.blocks) << "iteration " << i;
    }
    auto s = sim::faultio::stats();
    sim::faultio::uninstall();
    EXPECT_GT(s.injected, 0u);
    EXPECT_EQ(runs, 40u);
    fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Sampling accuracy tolerance
// ---------------------------------------------------------------------

TEST(SamplingTolerance, ExcessCpbSpreadFallsBackToFullDetail)
{
    wir::Module mod;
    workloads::find("vadd").build(mod);
    auto prog = compiler::compileToTrips(mod,
                                         compiler::Options::compiled());

    sim::SampleConfig scfg;
    scfg.warmupBlocks = 5;
    scfg.measureBlocks = 20;
    scfg.period = 50;

    // Reference: full-detail cycles for this program/config.
    uarch::UarchConfig ucfg;
    MemImage detailMem;
    wir::Interp::loadGlobals(mod, detailMem);
    uarch::CycleSim csim(prog, detailMem, ucfg);
    auto detail = csim.run();

    // An impossibly tight tolerance: any real CPB variation between
    // intervals exceeds it, forcing the graceful fallback.
    sim::SampleConfig tight = scfg;
    tight.maxCpbSpread = 1e-12;
    MemImage mem1;
    wir::Interp::loadGlobals(mod, mem1);
    auto r = sim::runSampled(prog, mem1, ucfg, tight);
    ASSERT_TRUE(r.fullDetail);
    EXPECT_TRUE(r.toleranceFallback);
    EXPECT_EQ(r.estCycles, static_cast<double>(detail.cycles));
    EXPECT_EQ(r.measuredBlocks, detail.blocksCommitted);

    // Tolerance off (default): plain sampled run, no fallback flag.
    MemImage mem2;
    wir::Interp::loadGlobals(mod, mem2);
    auto plain = sim::runSampled(prog, mem2, ucfg, scfg);
    EXPECT_FALSE(plain.toleranceFallback);
    EXPECT_GE(plain.intervals, 2u);
}
