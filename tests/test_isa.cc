/**
 * @file
 * ISA-level unit and property tests: binary encode/decode round trips,
 * block validation rules, code-size classes, program addressing, and
 * the tile topology helpers.
 */

#include <gtest/gtest.h>

#include "isa/disasm.hh"
#include "isa/encode.hh"
#include "isa/program.hh"
#include "isa/topology.hh"
#include "support/rng.hh"

using namespace trips;
using namespace trips::isa;

namespace {

Instruction
randomInstruction(Rng &rng)
{
    Instruction in;
    while (true) {
        in.op = static_cast<Opcode>(
            rng.below(static_cast<u64>(Opcode::NUM_OPCODES)));
        if (!isBranch(in.op))
            break;  // branches tested separately (target fields)
    }
    const auto &info = opInfo(in.op);
    bool is_const = in.op == Opcode::GENS || in.op == Opcode::APP;
    if (!is_const)
        in.pr = static_cast<PredMode>(rng.below(3));
    if (info.hasImm)
        in.imm = static_cast<i32>(
            is_const ? rng.range(IMM16_MIN, IMM16_MAX)
                     : rng.range(IMM9_MIN, IMM9_MAX));
    if (isMemory(in.op))
        in.lsid = static_cast<u8>(rng.below(MAX_LSIDS));
    for (unsigned t = 0; t < info.numTargets; ++t) {
        // 9-bit formats require a valid target in slot 0.
        bool need = t == 0 &&
                    (isLoad(in.op) || is_const || info.numTargets == 1);
        if (!need && rng.chance(0.3))
            continue;
        Target tg;
        tg.kind = static_cast<Target::Kind>(1 + rng.below(4));
        tg.index = static_cast<u8>(
            tg.kind == Target::Kind::Write ? rng.below(MAX_WRITES)
                                           : rng.below(MAX_INSTS));
        in.targets[t] = tg;
    }
    return in;
}

} // namespace

TEST(IsaEncode, RoundTripRandomInstructions)
{
    Rng rng(0xdec0de);
    for (int trial = 0; trial < 2000; ++trial) {
        Instruction in = randomInstruction(rng);
        u32 word = encodeInstruction(in);
        auto back = decodeInstruction(word);
        ASSERT_TRUE(back.has_value()) << disasmInstruction(in);
        EXPECT_EQ(back->op, in.op) << disasmInstruction(in);
        EXPECT_EQ(back->imm, in.imm) << disasmInstruction(in);
        EXPECT_EQ(back->pr, in.pr) << disasmInstruction(in);
        if (isMemory(in.op)) {
            EXPECT_EQ(back->lsid, in.lsid);
        }
        for (unsigned t = 0; t < opInfo(in.op).numTargets; ++t) {
            EXPECT_EQ(back->targets[t], in.targets[t])
                << disasmInstruction(in) << " target " << t;
        }
    }
}

TEST(IsaEncode, BranchRoundTrip)
{
    Instruction in;
    in.op = Opcode::BRO;
    in.pr = PredMode::OnFalse;
    in.exit = 5;
    in.targetBlock = 12345;
    auto back = decodeInstruction(encodeInstruction(in));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->op, Opcode::BRO);
    EXPECT_EQ(back->exit, 5);
    EXPECT_EQ(back->targetBlock, 12345);
    EXPECT_EQ(back->pr, PredMode::OnFalse);
}

TEST(IsaBlock, SizeClasses)
{
    Block b;
    b.label = "x";
    Instruction ret;
    ret.op = Opcode::RET;
    for (int i = 0; i < 30; ++i)
        b.insts.push_back(ret);
    EXPECT_EQ(b.sizeClass(), 32u);
    EXPECT_EQ(b.codeBytes(), 128u + 4 * 32);
    for (int i = 0; i < 10; ++i)
        b.insts.push_back(ret);
    EXPECT_EQ(b.sizeClass(), 64u);
    for (int i = 0; i < 60; ++i)
        b.insts.push_back(ret);
    EXPECT_EQ(b.sizeClass(), 128u);
}

TEST(IsaBlock, ValidatorCatchesMissingProducer)
{
    Block b;
    b.label = "bad";
    Instruction add;
    add.op = Opcode::ADD;   // needs two operands, none produced
    b.insts.push_back(add);
    Instruction ret;
    ret.op = Opcode::RET;
    b.insts.push_back(ret);
    auto err = validateBlock(b);
    EXPECT_NE(err.find("no producer"), std::string::npos) << err;
}

TEST(IsaBlock, ValidatorCatchesStoreMaskMismatch)
{
    Block b;
    b.label = "bad";
    Instruction gen;
    gen.op = Opcode::GENS;
    gen.imm = 4;
    gen.targets[0] = {Target::Kind::Op0, 1};
    b.insts.push_back(gen);
    Instruction st;
    st.op = Opcode::SD;
    st.lsid = 3;
    b.insts.push_back(st);
    // store needs op1 too
    Instruction gen2;
    gen2.op = Opcode::GENS;
    gen2.imm = 9;
    gen2.targets[0] = {Target::Kind::Op1, 1};
    b.insts.push_back(gen2);
    Instruction ret;
    ret.op = Opcode::RET;
    ret.exit = 1;
    b.insts.push_back(ret);
    b.storeMask = 0;   // should be 1<<3
    auto err = validateBlock(b);
    EXPECT_NE(err.find("store mask"), std::string::npos) << err;
    b.storeMask = 1u << 3;
    EXPECT_EQ(validateBlock(b), "");
}

TEST(IsaBlock, ValidatorCatchesEtOverflow)
{
    Block b;
    b.label = "bad";
    Instruction gen;
    gen.op = Opcode::GENS;
    for (int i = 0; i < 10; ++i) {
        gen.targets[0] = {Target::Kind::Write, 0};
        b.insts.push_back(gen);
    }
    Instruction ret;
    ret.op = Opcode::RET;
    b.insts.push_back(ret);
    b.writes.push_back(WriteInst{7});
    b.placement.assign(b.insts.size(), 0);   // 11 insts on one ET
    auto err = validateBlock(b);
    EXPECT_NE(err.find("reservation"), std::string::npos) << err;
}

TEST(IsaProgram, AddressesAndCodeBytes)
{
    Program p;
    Block b;
    b.label = "a";
    Instruction ret;
    ret.op = Opcode::RET;
    b.insts.push_back(ret);
    p.addBlock(b);
    // Second block: 40 NULLWs + ret spills into the 64-inst class.
    b.label = "b";
    b.insts.clear();
    Instruction nullw;
    nullw.op = Opcode::NULLW;
    for (int i = 0; i < 40; ++i)
        b.insts.push_back(nullw);
    b.insts.push_back(ret);
    p.addBlock(b);
    ASSERT_EQ(p.finalize(), "");
    EXPECT_EQ(p.blockAddr(0), Program::CODE_BASE);
    EXPECT_EQ(p.blockAddr(1), Program::CODE_BASE + 128 + 4 * 32);
    EXPECT_EQ(p.block(1).codeBytes(), 128u + 4 * 64);
    EXPECT_EQ(p.codeBytes(), (128u + 4 * 32) + (128u + 4 * 64));
    EXPECT_EQ(p.blockIndex("b"), 1u);
    EXPECT_TRUE(p.hasLabel("a"));
    EXPECT_FALSE(p.hasLabel("c"));
}

TEST(Topology, Distances)
{
    // GT at (0,0); ET0 at (1,1).
    EXPECT_EQ(hopDist(gtCoord(), etCoord(0)), 2u);
    // ET15 at (4,4): corner to corner.
    EXPECT_EQ(hopDist(gtCoord(), etCoord(15)), 8u);
    // RT bank above its column.
    EXPECT_EQ(hopDist(rtCoord(2), etCoord(2)), 1u);
    // DT row to ET in same row.
    EXPECT_EQ(hopDist(dtCoord(1), etCoord(4)), 1u);
    // Address interleave covers all four DTs.
    EXPECT_EQ(dtForAddr(0), 0u);
    EXPECT_EQ(dtForAddr(64), 1u);
    EXPECT_EQ(dtForAddr(128), 2u);
    EXPECT_EQ(dtForAddr(192), 3u);
    EXPECT_EQ(dtForAddr(256), 0u);
}

TEST(Disasm, MentionsPredicationAndTargets)
{
    Instruction in;
    in.op = Opcode::ADDI;
    in.pr = PredMode::OnTrue;
    in.imm = 42;
    in.targets[0] = {Target::Kind::Pred, 7};
    auto s = disasmInstruction(in);
    EXPECT_NE(s.find("addi_t"), std::string::npos) << s;
    EXPECT_NE(s.find("#42"), std::string::npos) << s;
    EXPECT_NE(s.find("[7,pred]"), std::string::npos) << s;
}
