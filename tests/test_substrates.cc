/**
 * @file
 * Substrate unit tests: caches (geometry, LRU, writebacks), the DRAM
 * model (row buffer, bandwidth), the operand network (routing,
 * delivery, hop accounting, backpressure), the predictors, the memory
 * image, and the statistics helpers.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/dram.hh"
#include "net/opn.hh"
#include "pred/predictors.hh"
#include "support/memimage.hh"
#include "support/rng.hh"
#include "support/stats.hh"

using namespace trips;

// ---------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------

TEST(Cache, HitAfterMiss)
{
    mem::Cache c({1024, 2, 64});
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x103f, false).hit);   // same line
    EXPECT_FALSE(c.access(0x1040, false).hit);  // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2 sets x 2 ways x 64B = 256B; three lines mapping to one set.
    mem::Cache c({256, 2, 64});
    Addr a = 0x0, b = 0x100, d = 0x200;   // same set (stride 128*2)
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);          // a most recent
    EXPECT_FALSE(c.access(d, false).hit);  // evicts b
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, DirtyWriteback)
{
    mem::Cache c({256, 2, 64});
    c.access(0x0, true);         // dirty
    c.access(0x100, false);
    auto r = c.access(0x200, false);   // evicts dirty 0x0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.victimLine, 0x0u);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheParam, MissRateFallsWithSize)
{
    // Property: bigger caches never miss more on the same trace.
    Rng rng(42);
    std::vector<Addr> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back((rng.below(512) * 64) % 32768);
    double last = 1.0;
    for (u64 size : {1024, 4096, 16384, 65536}) {
        mem::Cache c({size, 4, 64});
        for (Addr a : trace)
            c.access(a, false);
        EXPECT_LE(c.missRate(), last + 1e-9) << size;
        last = c.missRate();
    }
    EXPECT_LT(last, 0.03);   // only cold misses remain (512/20000)
}

// ---------------------------------------------------------------------
// DRAM
// ---------------------------------------------------------------------

TEST(Dram, RowBufferHitsAreFaster)
{
    mem::Dram d(mem::DramConfig{});
    Cycle first = d.request(0x0, 1000);
    // Same channel, same bank, same row: line 16 (channels*banks).
    Cycle second = d.request(16 * 64, first);
    EXPECT_GT(first - 1000, second - first);
    EXPECT_GE(d.rowHits(), 1u);
}

TEST(Dram, BandwidthLimited)
{
    mem::DramConfig cfg;
    mem::Dram d(cfg);
    // Saturate: issue 64 line requests at the same cycle.
    Cycle last = 0;
    for (int i = 0; i < 64; ++i)
        last = std::max(last, d.request(static_cast<Addr>(i) * 64, 0));
    // 64 transfers across 2 channels, each occupying the bus.
    EXPECT_GE(last, 64ull / 2 * cfg.cyclesPerTransfer);
}

// ---------------------------------------------------------------------
// OPN
// ---------------------------------------------------------------------

TEST(Opn, DeliversWithManhattanHops)
{
    net::OpnNetwork opn;
    net::OpnPacket p;
    p.src = isa::opnNode(isa::etCoord(0));    // (1,1)
    p.dst = isa::opnNode(isa::etCoord(15));   // (4,4)
    p.cls = net::OpnClass::EtEt;
    p.tag = 77;
    ASSERT_TRUE(opn.inject(p, 0));
    Cycle t = 0;
    bool got = false;
    while (t < 50 && !got) {
        opn.tick(++t);
        for (const auto &d : opn.delivered()) {
            EXPECT_EQ(d.tag, 77u);
            EXPECT_EQ(d.hops, 6u);
            got = true;
        }
    }
    EXPECT_TRUE(got);
    // Latency at least hop count.
    EXPECT_GE(t, 6u);
    EXPECT_EQ(opn.hopDist(net::OpnClass::EtEt).samples(), 1u);
}

TEST(Opn, AllPairsDeliverExactlyOnce)
{
    net::OpnNetwork opn;
    unsigned sent = 0;
    u64 tag = 1;
    for (unsigned s = 0; s < net::OpnNetwork::NODES; ++s) {
        net::OpnPacket p;
        p.src = s;
        p.dst = (s * 7 + 3) % net::OpnNetwork::NODES;
        p.tag = tag++;
        p.cls = net::OpnClass::Other;
        if (opn.inject(p, 0))
            ++sent;
    }
    unsigned received = 0;
    for (Cycle t = 1; t < 200; ++t) {
        opn.tick(t);
        received += static_cast<unsigned>(opn.delivered().size());
    }
    EXPECT_EQ(received, sent);
}

TEST(Opn, BackpressureOnFullFifo)
{
    net::OpnNetwork opn;
    net::OpnPacket p;
    p.src = 0;
    p.dst = 24;
    unsigned accepted = 0;
    for (int i = 0; i < 10; ++i)
        accepted += opn.inject(p, 0);
    EXPECT_EQ(accepted, net::OpnNetwork::FIFO_DEPTH);
}

// ---------------------------------------------------------------------
// Predictors
// ---------------------------------------------------------------------

TEST(Tournament, LearnsBiasAndPattern)
{
    pred::TournamentPredictor tp;
    // Strong taken bias.
    for (int i = 0; i < 100; ++i)
        tp.update(0x40, true);
    EXPECT_TRUE(tp.predict(0x40));
    // Alternating pattern learned via local history.
    for (int i = 0; i < 2000; ++i)
        tp.update(0x80, i & 1);
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        bool taken = i & 1;
        correct += tp.predict(0x80) == taken;
        tp.update(0x80, taken);
    }
    EXPECT_GT(correct, 90);
}

TEST(NextBlock, LearnsLoopExitAndTarget)
{
    pred::NextBlockPredictor nbp(pred::NextBlockConfig::prototype());
    // Block 5 loops to itself on exit 0 nine times, then exit 1 to 6.
    for (int rep = 0; rep < 50; ++rep) {
        for (int i = 0; i < 9; ++i)
            nbp.update(5, 0, 5, pred::BranchKind::Branch, 0);
        nbp.update(5, 1, 6, pred::BranchKind::Branch, 0);
        nbp.update(6, 0, 5, pred::BranchKind::Branch, 0);
    }
    // After warmup: the common case must predict correctly.
    auto p = nbp.predict(5);
    EXPECT_TRUE(p.valid);
    EXPECT_TRUE(p.nextBlock == 5 || p.nextBlock == 6);
    double rate = nbp.stats().missRate();
    EXPECT_LT(rate, 0.35);   // dominated by the 9-in-10 self loop
}

TEST(NextBlock, RasPredictsReturns)
{
    pred::NextBlockPredictor nbp(pred::NextBlockConfig::improved());
    // call block 1 -> 10, return to 2; callee 10 rets.
    for (int rep = 0; rep < 30; ++rep) {
        nbp.update(1, 0, 10, pred::BranchKind::Call, 2);
        nbp.update(10, 0, 2, pred::BranchKind::Ret, 0);
        nbp.update(2, 0, 1, pred::BranchKind::Branch, 0);
    }
    nbp.update(1, 0, 10, pred::BranchKind::Call, 2);
    auto p = nbp.predict(10);
    EXPECT_TRUE(p.valid);
    EXPECT_EQ(p.nextBlock, 2u);
    nbp.update(10, 0, 2, pred::BranchKind::Ret, 0);
}

TEST(DependencePredictor, TrainsAndDecays)
{
    pred::DependencePredictor dp(256);
    EXPECT_FALSE(dp.shouldWait(0x123));
    dp.trainViolation(0x123);
    EXPECT_TRUE(dp.shouldWait(0x123));
    EXPECT_FALSE(dp.shouldWait(0x456));
    for (int i = 0; i < 3 * 4096 + 10; ++i)
        dp.decayTick();
    EXPECT_FALSE(dp.shouldWait(0x123));
}

// ---------------------------------------------------------------------
// MemImage & stats
// ---------------------------------------------------------------------

TEST(MemImage, LittleEndianAndSparse)
{
    MemImage m;
    m.write(0x1000, 0x1122334455667788ULL, 8);
    EXPECT_EQ(m.read8(0x1000), 0x88);
    EXPECT_EQ(m.read8(0x1007), 0x11);
    EXPECT_EQ(m.read(0x1002, 2), 0x5566u);
    EXPECT_EQ(m.read64(0x900000), 0u);   // untouched reads zero
    m.writeF64(0x2000, 3.25);
    EXPECT_DOUBLE_EQ(m.readF64(0x2000), 3.25);
    EXPECT_LE(m.residentPages(), 3u);
}

TEST(Stats, DistributionAndMeans)
{
    Distribution d(8);
    d.sample(0, 10);
    d.sample(3, 10);
    d.sample(100);   // clamps into last bucket
    EXPECT_EQ(d.samples(), 21u);
    EXPECT_DOUBLE_EQ(d.fraction(0), 10.0 / 21);
    EXPECT_EQ(d.count(7), 1u);
    EXPECT_NEAR(d.mean(), (0 * 10 + 3 * 10 + 100) / 21.0, 1e-9);

    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(amean({1.0, 2.0, 3.0}), 2.0, 1e-9);
    EXPECT_EQ(geomean({}), 0.0);
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
    Rng c(9);
    for (int i = 0; i < 1000; ++i) {
        i64 v = c.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        double u = c.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}
