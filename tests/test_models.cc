/**
 * @file
 * Model-level property tests: compiler analyses (liveness, loops,
 * unrolling, normalization), the ideal machine's monotonicity in its
 * resource parameters, OoO platform ordering, and ISA-statistics
 * invariants that the paper's figures rely on.
 */

#include <gtest/gtest.h>

#include "compiler/analysis.hh"
#include "compiler/transform.hh"
#include "core/machines.hh"
#include "wir/interp.hh"
#include "wir/builder.hh"

using namespace trips;
using wir::FunctionBuilder;
using wir::Module;

namespace {

Module &
loopModule(Module &m)
{
    FunctionBuilder fb(m, "main", 0);
    auto i = fb.iconst(0);
    auto acc = fb.iconst(0);
    fb.label("loop");
    fb.assign(acc, fb.add(acc, i));
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(50)), "loop", "done");
    fb.label("done");
    fb.ret(acc);
    fb.finish();
    return m;
}

} // namespace

TEST(Analysis, LivenessCarriesLoopValues)
{
    Module m;
    loopModule(m);
    const auto &f = m.function("main");
    compiler::Liveness live(f);
    // The loop block (id 1) must keep acc and i live around the back
    // edge: live-in of the loop contains both.
    ASSERT_GE(f.blocks.size(), 2u);
    unsigned live_count = live.liveIn[1].count();
    EXPECT_GE(live_count, 2u);
}

TEST(Analysis, FindsNaturalLoop)
{
    Module m;
    loopModule(m);
    auto loops = compiler::findLoops(m.function("main"));
    ASSERT_EQ(loops.size(), 1u);
    EXPECT_EQ(loops[0].header, loops[0].latch);   // self loop
    EXPECT_TRUE(loops[0].innermost);
}

TEST(Transform, UnrollPreservesSemanticsAndGrowsBody)
{
    Module m;
    loopModule(m);
    wir::Function f = m.function("main");
    size_t before = f.blocks.size();
    compiler::Options o;
    o.maxUnroll = 4;
    o.unrollBudgetOps = 100;
    compiler::unrollLoops(f, o);
    EXPECT_GT(f.blocks.size(), before);
    // Execute the unrolled function through a fresh module.
    Module m2;
    m2.functions["main"] = f;
    MemImage mem;
    auto r = wir::Interp{}.run(m2, mem);
    EXPECT_EQ(r.retVal, 49 * 50 / 2);
}

TEST(Transform, NormalizeSplitsBigBlocks)
{
    Module m;
    FunctionBuilder fb(m, "main", 0);
    auto acc = fb.iconst(1);
    for (int i = 0; i < 100; ++i)
        fb.assign(acc, fb.addi(acc, 1));
    fb.ret(acc);
    fb.finish();
    wir::Function f = m.function("main");
    compiler::normalizeBlocks(f, 20, 10);
    unsigned big = 0;
    for (const auto &b : f.blocks)
        big += b.instrs.size() > 20;
    EXPECT_EQ(big, 0u);
    EXPECT_GT(f.blocks.size(), 5u);
    Module m2;
    m2.functions["main"] = f;
    MemImage mem;
    EXPECT_EQ(wir::Interp{}.run(m2, mem).retVal, 101);
}

// ---------------------------------------------------------------------
// Ideal machine monotonicity (the Fig. 10 orderings)
// ---------------------------------------------------------------------

class IdealMonotonic
    : public ::testing::TestWithParam<const workloads::Workload *>
{
};

TEST_P(IdealMonotonic, WindowAndDispatchOrdering)
{
    const auto &w = *GetParam();
    auto opts = compiler::Options::compiled();
    ideal::IdealConfig base;               // 1K, 8-cycle dispatch
    ideal::IdealConfig nod;
    nod.dispatchCost = 0;
    ideal::IdealConfig big;
    big.dispatchCost = 0;
    big.windowInsts = 128 * 1024;
    auto hw = core::runTrips(w, opts, true);
    auto i1 = core::runIdeal(w, opts, base);
    auto i2 = core::runIdeal(w, opts, nod);
    auto i3 = core::runIdeal(w, opts, big);
    EXPECT_GE(i1.ipc(), hw.uarch.ipc() * 0.99) << "ideal below hardware";
    EXPECT_GE(i2.ipc(), i1.ipc() * 0.99);
    EXPECT_GE(i3.ipc(), i2.ipc() * 0.99);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, IdealMonotonic,
    ::testing::Values(&workloads::find("vadd"), &workloads::find("fft"),
                      &workloads::find("autocor"),
                      &workloads::find("mcf")),
    [](const auto &info) { return info.param->name; });

// ---------------------------------------------------------------------
// OoO platform properties
// ---------------------------------------------------------------------

TEST(Ooo, PlatformsAgreeArchitecturally)
{
    const auto &w = workloads::find("conven");
    i64 golden = core::runGolden(w);
    for (auto cfg : {ooo::OooConfig::core2(), ooo::OooConfig::pentium4(),
                     ooo::OooConfig::pentium3()}) {
        auto r = core::runPlatform(w, cfg, risc::RiscOptions::gcc());
        EXPECT_EQ(r.retVal, golden) << cfg.name;
        EXPECT_GT(r.cycles, 0u);
        EXPECT_LE(r.ipc(), cfg.issueWidth);
    }
}

TEST(Ooo, Core2BeatsNarrowerMachinesOnIlp)
{
    // A regular FP kernel: the 4-wide Core 2 model should beat the
    // 3-wide, memory-starved P4/P3 models in cycles.
    const auto &w = workloads::find("autocor");
    auto g = risc::RiscOptions::gcc();
    auto c2 = core::runPlatform(w, ooo::OooConfig::core2(), g);
    auto p4 = core::runPlatform(w, ooo::OooConfig::pentium4(), g);
    auto p3 = core::runPlatform(w, ooo::OooConfig::pentium3(), g);
    EXPECT_LT(c2.cycles, p4.cycles);
    EXPECT_LT(c2.cycles, p3.cycles);
}

// ---------------------------------------------------------------------
// ISA statistics invariants used by Figs. 3-5
// ---------------------------------------------------------------------

class IsaInvariants
    : public ::testing::TestWithParam<const workloads::Workload *>
{
};

TEST_P(IsaInvariants, AccountingAddsUp)
{
    const auto &w = *GetParam();
    auto r = core::runTrips(w, compiler::Options::compiled(), false);
    const auto &s = r.isa;
    // Every fetched instruction is exactly one of the categories.
    EXPECT_EQ(s.fetched,
              s.useful + s.moves + s.executedNotUsed +
                  s.fetchedNotExecuted);
    EXPECT_EQ(s.fired, s.useful + s.moves + s.executedNotUsed);
    EXPECT_EQ(s.useful, s.usefulArith + s.usefulMemory +
                            s.usefulControl + s.usefulTests);
    // Exactly one branch per block is useful control flow.
    EXPECT_EQ(s.usefulControl, s.blocks);
    // Hardware limits.
    EXPECT_LE(s.meanBlockSize(), 128.0);
    EXPECT_LE(static_cast<double>(s.readsFetched) / s.blocks, 32.0);
    EXPECT_LE(static_cast<double>(s.writesCommitted) / s.blocks, 32.0);
}

INSTANTIATE_TEST_SUITE_P(
    Mix, IsaInvariants,
    ::testing::Values(&workloads::find("a2time"),
                      &workloads::find("fft"),
                      &workloads::find("gzip"),
                      &workloads::find("mesa"),
                      &workloads::find("vortex"),
                      &workloads::find("swim")),
    [](const auto &info) { return info.param->name; });
