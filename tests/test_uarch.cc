/**
 * @file
 * Cycle-level simulator tests: architectural equivalence with the
 * functional simulator across control/memory/call-heavy programs, and
 * sanity of the microarchitectural statistics.
 */

#include <gtest/gtest.h>

#include "compiler/codegen.hh"
#include "support/rng.hh"
#include "trips/func_sim.hh"
#include "uarch/cycle_sim.hh"
#include "wir/builder.hh"
#include "wir/interp.hh"

using namespace trips;
using wir::FunctionBuilder;
using wir::Module;

namespace {

uarch::UarchResult
checkCycleSim(Module &mod, const std::vector<std::string> &outs,
              const compiler::Options &opts)
{
    auto prog = compiler::compileToTrips(mod, opts);

    MemImage fmem;
    wir::Interp::loadGlobals(mod, fmem);
    sim::FuncSim fsim(prog, fmem);
    auto fres = fsim.run();
    EXPECT_FALSE(fres.fuelExhausted);

    MemImage cmem;
    wir::Interp::loadGlobals(mod, cmem);
    uarch::CycleSim csim(prog, cmem);
    auto cres = csim.run();
    EXPECT_FALSE(cres.fuelExhausted);

    EXPECT_EQ(cres.retVal, fres.retVal);
    for (const auto &g : outs) {
        const auto &gv = mod.global(g);
        for (u64 i = 0; i < gv.size; ++i) {
            EXPECT_EQ(cmem.read8(gv.addr + i), fmem.read8(gv.addr + i))
                << "global " << g << " byte " << i;
        }
    }
    EXPECT_EQ(cres.blocksCommitted, fres.stats.blocks);
    return cres;
}

} // namespace

TEST(CycleSim, LoopEquivalence)
{
    Module mod;
    Addr arr = mod.addGlobal("arr", 256 * 8);
    FunctionBuilder fb(mod, "main", 0);
    auto base = fb.iconst(static_cast<i64>(arr));
    auto i = fb.iconst(0);
    auto acc = fb.iconst(0);
    fb.label("loop");
    auto a = fb.add(base, fb.shli(i, 3));
    fb.store(a, fb.mul(i, fb.addi(i, 3)), 0);
    fb.assign(acc, fb.add(acc, fb.load(a, 0)));
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(256)), "loop", "done");
    fb.label("done");
    fb.ret(acc);
    fb.finish();

    auto r = checkCycleSim(mod, {"arr"}, compiler::Options::compiled());
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.ipc(), 0.2);
    EXPECT_GT(r.avgBlocksInFlight, 1.0);
}

TEST(CycleSim, BranchyCodeEquivalence)
{
    Module mod;
    Addr out = mod.addGlobal("out", 64 * 8);
    FunctionBuilder fb(mod, "main", 0);
    auto base = fb.iconst(static_cast<i64>(out));
    auto i = fb.iconst(0);
    auto x = fb.iconst(123456789);
    fb.label("loop");
    // xorshift-style data-dependent branching
    fb.assign(x, fb.bxor(x, fb.shli(x, 13)));
    fb.assign(x, fb.bxor(x, fb.shr(x, fb.iconst(7))));
    fb.br(fb.cmpEq(fb.andi(x, 3), fb.iconst(0)), "t", "e");
    fb.label("t");
    fb.store(fb.add(base, fb.shli(fb.andi(i, 63), 3)), x, 0);
    fb.jmp("next");
    fb.label("e");
    fb.store(fb.add(base, fb.shli(fb.andi(i, 63), 3)),
             fb.bnot(x), 0);
    fb.label("next");
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(500)), "loop", "done");
    fb.label("done");
    fb.ret(x);
    fb.finish();

    auto r = checkCycleSim(mod, {"out"}, compiler::Options::compiled());
    EXPECT_GT(r.blocksCommitted, 100u);
}

TEST(CycleSim, CallsEquivalence)
{
    Module mod;
    {
        FunctionBuilder fb(mod, "mix", 2);
        auto a = fb.param(0);
        auto b = fb.param(1);
        fb.ret(fb.bxor(fb.mul(a, fb.iconst(31)), b));
        fb.finish();
    }
    {
        FunctionBuilder fb(mod, "main", 0);
        auto i = fb.iconst(0);
        auto acc = fb.iconst(7);
        fb.label("loop");
        auto v = fb.call("mix", {acc, i});
        fb.assign(acc, v);
        fb.assign(i, fb.addi(i, 1));
        fb.br(fb.cmpLt(i, fb.iconst(64)), "loop", "done");
        fb.label("done");
        fb.ret(acc);
        fb.finish();
    }
    checkCycleSim(mod, {}, compiler::Options::compiled());
}

TEST(CycleSim, StoreLoadDependenceInBlock)
{
    // Read-after-write through memory inside the same block exercises
    // LSQ forwarding and the violation/flush path.
    Module mod;
    Addr buf = mod.addGlobal("buf", 64 * 8);
    FunctionBuilder fb(mod, "main", 0);
    auto base = fb.iconst(static_cast<i64>(buf));
    auto i = fb.iconst(1);
    fb.store(base, fb.iconst(41), 0);
    fb.label("loop");
    auto prev = fb.load(fb.add(base, fb.shli(fb.addi(i, -1), 3)), 0);
    fb.store(fb.add(base, fb.shli(i, 3)), fb.addi(prev, 1), 0);
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(64)), "loop", "done");
    fb.label("done");
    fb.ret(fb.load(base, 63 * 8));
    fb.finish();

    auto r = checkCycleSim(mod, {"buf"}, compiler::Options::hand());
    EXPECT_EQ(r.retVal, 41 + 63);
}

TEST(CycleSim, HandPresetFasterOnRegularLoop)
{
    auto build = [](Module &mod) {
        Addr a = mod.addGlobal("a", 1024 * 8);
        Addr b = mod.addGlobal("b", 1024 * 8);
        FunctionBuilder fb(mod, "main", 0);
        auto pa = fb.iconst(static_cast<i64>(a));
        auto pb = fb.iconst(static_cast<i64>(b));
        auto i = fb.iconst(0);
        fb.label("loop");
        auto off = fb.shli(i, 3);
        fb.store(fb.add(pb, off),
                 fb.add(fb.load(fb.add(pa, off), 0), fb.iconst(3)), 0);
        fb.assign(i, fb.addi(i, 1));
        fb.br(fb.cmpLt(i, fb.iconst(1024)), "loop", "done");
        fb.label("done");
        fb.ret(i);
        fb.finish();
    };
    Module m1, m2;
    build(m1);
    build(m2);
    auto p1 = compiler::compileToTrips(m1, compiler::Options::compiled());
    auto p2 = compiler::compileToTrips(m2, compiler::Options::hand());
    MemImage mem1, mem2;
    uarch::CycleSim s1(p1, mem1), s2(p2, mem2);
    auto r1 = s1.run();
    auto r2 = s2.run();
    EXPECT_EQ(r1.retVal, r2.retVal);
    // Hand preset forms bigger blocks: fewer block commits and fewer
    // per-block overheads. This loop is DT-bank bound, so cycles stay
    // in the same range rather than dropping proportionally.
    EXPECT_LT(r2.blocksCommitted, r1.blocksCommitted);
    EXPECT_GT(static_cast<double>(r2.instsFetched) / r2.blocksCommitted,
              static_cast<double>(r1.instsFetched) / r1.blocksCommitted);
    EXPECT_LT(r2.cycles, r1.cycles * 1.2);
}

TEST(CycleSim, OpnTrafficRecorded)
{
    Module mod;
    FunctionBuilder fb(mod, "main", 0);
    auto i = fb.iconst(0);
    auto acc = fb.iconst(0);
    fb.label("loop");
    fb.assign(acc, fb.add(acc, fb.mul(i, i)));
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(200)), "loop", "done");
    fb.label("done");
    fb.ret(acc);
    fb.finish();
    auto r = checkCycleSim(mod, {}, compiler::Options::compiled());
    u64 etet =
        r.opnHops[static_cast<size_t>(net::OpnClass::EtEt)].samples();
    EXPECT_GT(etet + r.localBypasses, 100u);
}
