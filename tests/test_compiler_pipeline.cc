/**
 * @file
 * The TRIPS backend pass pipeline: per-pass CompileStats pinned on
 * golden workloads (the mov/null/test instruction mix behind the
 * paper's Fig. 5 composition breakdown), the TIL structural verifier
 * against hand-broken graphs, and the block-splitting pass on
 * programs that exceed the prototype block limits the seed backend
 * fataled on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/pipeline.hh"
#include "compiler/til.hh"
#include "core/machines.hh"
#include "wir/builder.hh"

using namespace trips;
using compiler::PassId;
using compiler::til::HBlock;
using compiler::til::HRead;
using compiler::til::HWrite;
using compiler::til::TNode;
using isa::Opcode;
using wir::FunctionBuilder;
using wir::Module;

namespace {

const compiler::PassCounters &
pass(const compiler::CompileStats &cs, PassId id)
{
    return cs.pass[static_cast<unsigned>(id)];
}

compiler::CompileStats
compileWorkload(const char *name, compiler::Options opts)
{
    wir::Module mod;
    workloads::find(name).build(mod);
    compiler::CompileStats cs;
    opts.verifyTil = true;
    compiler::compileToTrips(mod, opts, &cs);
    return cs;
}

// ---- small TIL graph builders for the verifier tests ----

/** A block with one read, one unpredicated BRO exit, and `n` nodes
 *  appended by the caller. */
HBlock
skeleton()
{
    HBlock hb;
    hb.label = "t.r0";
    HRead r;
    r.v = 100;
    hb.reads.push_back(r);
    return hb;
}

i32
addNode(HBlock &hb, Opcode op, std::vector<i32> in0 = {},
        std::vector<i32> in1 = {}, i32 pred = -1, bool pol = true)
{
    TNode n;
    n.op = op;
    n.in0 = std::move(in0);
    n.in1 = std::move(in1);
    n.predNode = pred;
    n.predPol = pol;
    hb.nodes.push_back(std::move(n));
    return static_cast<i32>(hb.nodes.size() - 1);
}

void
addExit(HBlock &hb)
{
    TNode br;
    br.op = Opcode::BRO;
    br.targetLabel = "t.r1";
    hb.nodes.push_back(std::move(br));
}

constexpr i32 READ0 = -1;

} // namespace

// ---------------------------------------------------------------------
// Per-pass CompileStats on golden workloads
// ---------------------------------------------------------------------

TEST(PassStats, VaddPinnedPerPassBreakdown)
{
    auto cs = compileWorkload("vadd", compiler::Options::compiled());
    // Final instruction mix (the Fig. 5-style composition for vadd).
    EXPECT_EQ(cs.regions, 3u);
    EXPECT_EQ(cs.blocks, 3u);
    EXPECT_EQ(cs.totalInsts, 94u);
    EXPECT_EQ(cs.movInsts, 40u);
    EXPECT_EQ(cs.nullInsts, 3u);
    EXPECT_EQ(cs.testInsts, 5u);
    // Per-pass: if-conversion produces the dataflow; fanout adds the
    // mov trees (the paper's mov overhead); nothing splits.
    EXPECT_EQ(pass(cs, PassId::IfConvert).tilNodes, 60u);
    EXPECT_EQ(pass(cs, PassId::IfConvert).movNodes, 6u);
    EXPECT_EQ(pass(cs, PassId::Split).addedNodes, 0u);
    EXPECT_EQ(pass(cs, PassId::Fanout).tilNodes, 94u);
    EXPECT_EQ(pass(cs, PassId::Fanout).addedNodes, 34u);
    EXPECT_EQ(cs.splitBlocks, 0u);
    EXPECT_EQ(cs.overflowRetries, 0u);
}

TEST(PassStats, MesaPinnedPerPassBreakdown)
{
    // mesa is the predication-heavy proxy: more movs and NULLWs from
    // if-conversion itself, before fanout adds its trees.
    auto cs = compileWorkload("mesa", compiler::Options::compiled());
    EXPECT_EQ(cs.regions, 5u);
    EXPECT_EQ(cs.totalInsts, 111u);
    EXPECT_EQ(cs.movInsts, 52u);
    EXPECT_EQ(cs.nullInsts, 7u);
    EXPECT_EQ(cs.testInsts, 8u);
    EXPECT_EQ(pass(cs, PassId::IfConvert).tilNodes, 73u);
    EXPECT_EQ(pass(cs, PassId::IfConvert).movNodes, 14u);
    EXPECT_EQ(pass(cs, PassId::IfConvert).nullNodes, 7u);
    EXPECT_EQ(pass(cs, PassId::Fanout).addedNodes, 38u);
}

TEST(PassStats, StructuralInvariantsAcrossAllWorkloads)
{
    for (const auto &w : workloads::all()) {
        auto cs = compileWorkload(w.name.c_str(),
                                  compiler::Options::compiled());
        SCOPED_TRACE(w.name);
        // Region count is the region-form pass's block count; no
        // registered workload needs the splitting pass, so emitted
        // blocks == regions.
        EXPECT_EQ(pass(cs, PassId::RegionForm).tilBlocks, cs.regions);
        EXPECT_EQ(cs.blocks, cs.regions + cs.splitBlocks);
        EXPECT_EQ(cs.splitBlocks, 0u);
        // Fanout only ever adds MOV nodes.
        EXPECT_EQ(pass(cs, PassId::Fanout).addedNodes,
                  pass(cs, PassId::Fanout).movNodes -
                      pass(cs, PassId::Split).movNodes);
        EXPECT_EQ(pass(cs, PassId::Fanout).nullNodes,
                  pass(cs, PassId::Split).nullNodes);
        EXPECT_EQ(pass(cs, PassId::Fanout).testNodes,
                  pass(cs, PassId::Split).testNodes);
        // Regalloc and emission do not reshape the TIL.
        EXPECT_EQ(pass(cs, PassId::RegAlloc).tilNodes,
                  pass(cs, PassId::Fanout).tilNodes);
        EXPECT_EQ(pass(cs, PassId::Emit).tilNodes,
                  pass(cs, PassId::Fanout).tilNodes);
        // The emitted program is exactly the post-fanout TIL.
        EXPECT_EQ(cs.totalInsts, pass(cs, PassId::Emit).tilNodes);
        EXPECT_EQ(cs.movInsts, pass(cs, PassId::Emit).movNodes);
        // The paper's mov-fanout overhead: a substantial but bounded
        // slice of all instructions (Fig. 4/5's move category; the
        // small proxies sit above the paper's ~20% static share
        // because their blocks are short).
        double movFrac = static_cast<double>(cs.movInsts) /
                         static_cast<double>(cs.totalInsts);
        EXPECT_GT(movFrac, 0.05);
        EXPECT_LT(movFrac, 0.80);
    }
}

TEST(PassStats, AllPresetsCompileUnderTilVerification)
{
    // The verifier re-checks every block between every pass; any
    // operand-totality or coverage bug in the backend fatals here.
    for (const auto &w : workloads::all()) {
        compileWorkload(w.name.c_str(), compiler::Options::compiled());
        compileWorkload(w.name.c_str(), compiler::Options::hand());
        compileWorkload(w.name.c_str(), compiler::Options::basicBlock());
    }
    SUCCEED();
}

// ---------------------------------------------------------------------
// TIL verifier: positive case and hand-broken graphs
// ---------------------------------------------------------------------

TEST(TilVerify, WellFormedDiamondPasses)
{
    HBlock hb = skeleton();
    i32 t = addNode(hb, Opcode::TNEI, {READ0});
    i32 m1 = addNode(hb, Opcode::MOV, {READ0}, {}, t, true);
    i32 m2 = addNode(hb, Opcode::MOV, {READ0}, {}, t, false);
    HWrite w;
    w.v = 101;
    w.prods = {m1, m2};
    hb.writes.push_back(w);
    addExit(hb);
    EXPECT_EQ(compiler::til::verify(hb), "");
}

TEST(TilVerify, MissingOperandProducer)
{
    HBlock hb = skeleton();
    addNode(hb, Opcode::ADD, {READ0}, {});  // operand 1 unfed
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("has no producer"), std::string::npos) << err;
}

TEST(TilVerify, DoubleDeliveryToWrite)
{
    HBlock hb = skeleton();
    i32 m1 = addNode(hb, Opcode::MOV, {READ0});
    i32 m2 = addNode(hb, Opcode::MOV, {READ0});
    HWrite w;
    w.v = 101;
    w.prods = {m1, m2};  // both unpredicated: two tokens on every path
    hb.writes.push_back(w);
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("received two tokens"), std::string::npos) << err;
}

TEST(TilVerify, NullwComplementCoverageHole)
{
    // The write is fed only on the taken polarity; the complement path
    // starves it — exactly the class of bug the differential fuzzer
    // caught as blocks hanging at commit.
    HBlock hb = skeleton();
    i32 t = addNode(hb, Opcode::TNEI, {READ0});
    i32 m1 = addNode(hb, Opcode::MOV, {READ0}, {}, t, true);
    HWrite w;
    w.v = 101;
    w.prods = {m1};
    hb.writes.push_back(w);
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("coverage hole"), std::string::npos) << err;
}

TEST(TilVerify, PredicateRootedAtNonTest)
{
    HBlock hb = skeleton();
    i32 a = addNode(hb, Opcode::ADDI, {READ0});
    addNode(hb, Opcode::MOV, {READ0}, {}, a, true);
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("non-test"), std::string::npos) << err;
}

TEST(TilVerify, PredicatedStoreRejected)
{
    // Stores must settle on every path (store mask); gating belongs on
    // the operands via the NULLW idiom, never on the store itself.
    HBlock hb = skeleton();
    i32 t = addNode(hb, Opcode::TNEI, {READ0});
    addNode(hb, Opcode::SD, {READ0}, {READ0}, t, true);
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("predicated"), std::string::npos) << err;
}

TEST(TilVerify, DataflowCycle)
{
    HBlock hb = skeleton();
    i32 m1 = addNode(hb, Opcode::MOV, {READ0});
    i32 m2 = addNode(hb, Opcode::MOV, {m1});
    hb.nodes[m1].in0 = {m2};  // m1 <-> m2
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("cycle"), std::string::npos) << err;
}

TEST(TilVerify, DuplicateLsid)
{
    HBlock hb = skeleton();
    i32 s1 = addNode(hb, Opcode::SD, {READ0}, {READ0});
    i32 s2 = addNode(hb, Opcode::SD, {READ0}, {READ0});
    hb.nodes[s1].lsid = 0;
    hb.nodes[s2].lsid = 0;
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("duplicate LSID"), std::string::npos) << err;
}

TEST(TilVerify, TwoExitsFireOnOnePath)
{
    HBlock hb = skeleton();
    addExit(hb);
    addExit(hb);  // two unpredicated exits: both fire on every path
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("exits fired"), std::string::npos) << err;
}

TEST(TilVerify, NoExitRejected)
{
    HBlock hb = skeleton();
    addNode(hb, Opcode::MOV, {READ0});
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("no block exit"), std::string::npos) << err;
}

TEST(TilVerify, SizeLimitsEnforcedWhenRequested)
{
    HBlock hb = skeleton();
    i32 prev = READ0;
    for (int i = 0; i < 200; ++i)
        prev = addNode(hb, Opcode::ADDI, {prev});
    addExit(hb);
    EXPECT_EQ(compiler::til::verify(hb), "");  // no limits pre-split
    compiler::til::VerifyOptions vo;
    vo.sizeLimits = true;
    auto err = compiler::til::verify(hb, vo);
    EXPECT_NE(err.find("exceed"), std::string::npos) << err;
}

TEST(TilDump, NamesNodesReadsWritesAndTargets)
{
    HBlock hb = skeleton();
    i32 t = addNode(hb, Opcode::TNEI, {READ0});
    i32 m1 = addNode(hb, Opcode::MOV, {READ0}, {}, t, true);
    HWrite w;
    w.v = 101;
    w.prods = {m1};
    hb.writes.push_back(w);
    addExit(hb);
    std::string d = compiler::til::dump(hb);
    EXPECT_NE(d.find("til block t.r0"), std::string::npos);
    EXPECT_NE(d.find("tnei"), std::string::npos);
    EXPECT_NE(d.find("p=+n0"), std::string::npos);
    EXPECT_NE(d.find("-> t.r1"), std::string::npos);
    EXPECT_NE(d.find("write w0: v101"), std::string::npos);
}

// ---------------------------------------------------------------------
// Block splitting
// ---------------------------------------------------------------------

TEST(BlockSplitting, LongChainSplitsIntoVerifiedChunks)
{
    HBlock hb = skeleton();
    i32 prev = READ0;
    for (int i = 0; i < 300; ++i)
        prev = addNode(hb, Opcode::ADDI, {prev});
    HWrite w;
    w.v = 101;
    w.prods = {prev};
    hb.writes.push_back(w);
    addExit(hb);
    hb.wirMembers = {0};

    wir::Vreg next = 200;
    compiler::CompileStats cs;
    auto chunks = compiler::splitPass(std::move(hb), "t",
                                      [&] { return next++; }, &cs);
    ASSERT_GT(chunks.size(), 2u);
    EXPECT_EQ(cs.splitBlocks, static_cast<unsigned>(chunks.size() - 1));
    EXPECT_GT(cs.spillWrites, 0u);

    compiler::til::VerifyOptions vo;
    vo.sizeLimits = true;
    for (size_t i = 0; i < chunks.size(); ++i) {
        SCOPED_TRACE("chunk " + std::to_string(i));
        EXPECT_EQ(compiler::til::verify(chunks[i], vo), "");
        EXPECT_EQ(compiler::checkBlockLimits(chunks[i]), "");
        // Chain labels and BRO links.
        std::string want = i == 0 ? "t.r0"
                                  : "t.r0.s" + std::to_string(i);
        EXPECT_EQ(chunks[i].label, want);
        if (i + 1 < chunks.size()) {
            const TNode &br = chunks[i].nodes.back();
            EXPECT_EQ(br.op, Opcode::BRO);
            EXPECT_EQ(br.targetLabel, chunks[i + 1].label);
        }
    }
    // The original exit survives in the final chunk.
    EXPECT_EQ(chunks.back().nodes.back().targetLabel, "t.r1");
}

TEST(BlockSplitting, FittingBlockReturnedUnchanged)
{
    HBlock hb = skeleton();
    i32 a = addNode(hb, Opcode::ADDI, {READ0});
    HWrite w;
    w.v = 101;
    w.prods = {a};
    hb.writes.push_back(w);
    addExit(hb);
    wir::Vreg next = 200;
    compiler::CompileStats cs;
    auto chunks = compiler::splitPass(std::move(hb), "t",
                                      [&] { return next++; }, &cs);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(cs.splitBlocks, 0u);
    EXPECT_EQ(chunks[0].nodes.size(), 2u);
}

TEST(BlockSplitting, ManyValuesLiveAcrossCallPreviouslyFatal)
{
    // Forty values live across a call: the caller-save spill region
    // needs 40 stores and the continuation reload region 40 loads plus
    // 40 reads — far past the 32-LSID / 32-read block limits the seed
    // backend fataled on ("single WIR block overflows a TRIPS block").
    // The frame is also wider than the 9-bit load/store displacement.
    Module mod;
    {
        FunctionBuilder fb(mod, "inc", 1);
        fb.ret(fb.addi(fb.param(0), 1));
        fb.finish();
    }
    {
        FunctionBuilder fb(mod, "main", 0);
        std::vector<wir::Vreg> vals;
        auto x = fb.iconst(3);
        for (int i = 0; i < 40; ++i) {
            x = fb.add(x, fb.muli(x, i % 7 + 1));
            vals.push_back(x);
        }
        auto acc = fb.call("inc", {vals[0]});
        for (auto v : vals)
            acc = fb.bxor(fb.add(acc, v), fb.shli(acc, 1));
        fb.ret(acc);
        fb.finish();
    }
    ASSERT_EQ(wir::verifyModule(mod), "");

    i64 golden = core::runGolden(mod).retVal;
    auto opts = compiler::Options::compiled();
    opts.verifyTil = true;
    compiler::CompileStats cs;
    compiler::compileToTrips(mod, opts, &cs);
    EXPECT_GT(cs.splitBlocks, 0u);
    EXPECT_GT(cs.spillWrites, 0u);

    auto run = core::runTrips(mod, opts, true);
    EXPECT_EQ(run.retVal, golden);
    EXPECT_EQ(run.uarch.retVal, golden);
    auto hand = core::runTrips(mod, compiler::Options::hand(), false);
    EXPECT_EQ(hand.retVal, golden);
}

TEST(BlockSplitting, DumpAndStatsDebugModesRun)
{
    // The --dump-til / verify-between-passes debug modes on a split
    // compile: the dump must name every pass and the split chunks.
    Module mod;
    FunctionBuilder fb(mod, "main", 0);
    auto x = fb.iconst(1);
    for (int i = 0; i < 120; ++i)
        x = fb.add(x, fb.select(fb.cmpLt(x, fb.iconst(i)), x,
                                fb.iconst(i)));
    fb.ret(x);
    fb.finish();

    std::ostringstream dump;
    auto opts = compiler::Options::compiled();
    opts.verifyTil = true;
    opts.tilDump = &dump;
    compiler::CompileStats cs;
    compiler::compileToTrips(mod, opts, &cs);
    EXPECT_NE(dump.str().find("=== TIL after if-convert"),
              std::string::npos);
    EXPECT_NE(dump.str().find("=== TIL after split"), std::string::npos);
    EXPECT_NE(dump.str().find("=== TIL after fanout"), std::string::npos);
}
