/**
 * @file
 * The TRIPS backend pass pipeline: per-pass CompileStats pinned on
 * golden workloads (the mov/null/test instruction mix behind the
 * paper's Fig. 5 composition breakdown), the TIL structural verifier
 * against hand-broken graphs, and the block-splitting pass on
 * programs that exceed the prototype block limits the seed backend
 * fataled on.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "compiler/pipeline.hh"
#include "compiler/spill.hh"
#include "compiler/til.hh"
#include "core/machines.hh"
#include "isa/disasm.hh"
#include "wir/builder.hh"

using namespace trips;
using compiler::PassId;
using compiler::til::HBlock;
using compiler::til::HRead;
using compiler::til::HWrite;
using compiler::til::TNode;
using isa::Opcode;
using wir::FunctionBuilder;
using wir::Module;

namespace {

const compiler::PassCounters &
pass(const compiler::CompileStats &cs, PassId id)
{
    return cs.pass[static_cast<unsigned>(id)];
}

compiler::CompileStats
compileWorkload(const char *name, compiler::Options opts)
{
    wir::Module mod;
    workloads::find(name).build(mod);
    compiler::CompileStats cs;
    opts.verifyTil = true;
    compiler::compileToTrips(mod, opts, &cs);
    return cs;
}

// ---- small TIL graph builders for the verifier tests ----

/** A block with one read, one unpredicated BRO exit, and `n` nodes
 *  appended by the caller. */
HBlock
skeleton()
{
    HBlock hb;
    hb.label = "t.r0";
    HRead r;
    r.v = 100;
    hb.reads.push_back(r);
    return hb;
}

i32
addNode(HBlock &hb, Opcode op, std::vector<i32> in0 = {},
        std::vector<i32> in1 = {}, i32 pred = -1, bool pol = true)
{
    TNode n;
    n.op = op;
    n.in0 = std::move(in0);
    n.in1 = std::move(in1);
    n.predNode = pred;
    n.predPol = pol;
    hb.nodes.push_back(std::move(n));
    return static_cast<i32>(hb.nodes.size() - 1);
}

void
addExit(HBlock &hb)
{
    TNode br;
    br.op = Opcode::BRO;
    br.targetLabel = "t.r1";
    hb.nodes.push_back(std::move(br));
}

constexpr i32 READ0 = -1;

} // namespace

// ---------------------------------------------------------------------
// Per-pass CompileStats on golden workloads
// ---------------------------------------------------------------------

TEST(PassStats, VaddPinnedPerPassBreakdown)
{
    auto cs = compileWorkload("vadd", compiler::Options::compiled());
    // Final instruction mix (the Fig. 5-style composition for vadd).
    EXPECT_EQ(cs.regions, 3u);
    EXPECT_EQ(cs.blocks, 3u);
    EXPECT_EQ(cs.totalInsts, 94u);
    EXPECT_EQ(cs.movInsts, 40u);
    EXPECT_EQ(cs.nullInsts, 3u);
    EXPECT_EQ(cs.testInsts, 5u);
    // Per-pass: if-conversion produces the dataflow; fanout adds the
    // mov trees (the paper's mov overhead); nothing splits.
    EXPECT_EQ(pass(cs, PassId::IfConvert).tilNodes, 60u);
    EXPECT_EQ(pass(cs, PassId::IfConvert).movNodes, 6u);
    EXPECT_EQ(pass(cs, PassId::Split).addedNodes, 0u);
    EXPECT_EQ(pass(cs, PassId::Fanout).tilNodes, 94u);
    EXPECT_EQ(pass(cs, PassId::Fanout).addedNodes, 34u);
    // The spill pass observes but does not touch vadd: its counters
    // mirror fanout's and no spill activity is recorded.
    EXPECT_EQ(pass(cs, PassId::Spill).tilNodes, 94u);
    EXPECT_EQ(pass(cs, PassId::Spill).addedNodes, 0u);
    EXPECT_EQ(cs.spilledValues, 0u);
    EXPECT_EQ(cs.spillSlots, 0u);
    EXPECT_EQ(cs.spillLoads, 0u);
    EXPECT_EQ(cs.spillStores, 0u);
    EXPECT_EQ(cs.spillRounds, 0u);
    EXPECT_EQ(cs.splitBlocks, 0u);
    EXPECT_EQ(cs.overflowRetries, 0u);
}

TEST(PassStats, MesaPinnedPerPassBreakdown)
{
    // mesa is the predication-heavy proxy: more movs and NULLWs from
    // if-conversion itself, before fanout adds its trees.
    auto cs = compileWorkload("mesa", compiler::Options::compiled());
    EXPECT_EQ(cs.regions, 5u);
    EXPECT_EQ(cs.totalInsts, 111u);
    EXPECT_EQ(cs.movInsts, 52u);
    EXPECT_EQ(cs.nullInsts, 7u);
    EXPECT_EQ(cs.testInsts, 8u);
    EXPECT_EQ(pass(cs, PassId::IfConvert).tilNodes, 73u);
    EXPECT_EQ(pass(cs, PassId::IfConvert).movNodes, 14u);
    EXPECT_EQ(pass(cs, PassId::IfConvert).nullNodes, 7u);
    EXPECT_EQ(pass(cs, PassId::Fanout).addedNodes, 38u);
    EXPECT_EQ(pass(cs, PassId::Spill).tilNodes, 111u);
    EXPECT_EQ(pass(cs, PassId::Spill).addedNodes, 0u);
    EXPECT_EQ(cs.spilledValues, 0u);
    EXPECT_EQ(cs.spillRounds, 0u);
}

TEST(PassStats, StructuralInvariantsAcrossAllWorkloads)
{
    for (const auto &w : workloads::all()) {
        auto cs = compileWorkload(w.name.c_str(),
                                  compiler::Options::compiled());
        SCOPED_TRACE(w.name);
        // Region count is the region-form pass's block count; no
        // registered workload needs the splitting pass, so emitted
        // blocks == regions.
        EXPECT_EQ(pass(cs, PassId::RegionForm).tilBlocks, cs.regions);
        EXPECT_EQ(cs.blocks, cs.regions + cs.splitBlocks);
        EXPECT_EQ(cs.splitBlocks, 0u);
        // Fanout only ever adds MOV nodes.
        EXPECT_EQ(pass(cs, PassId::Fanout).addedNodes,
                  pass(cs, PassId::Fanout).movNodes -
                      pass(cs, PassId::Split).movNodes);
        EXPECT_EQ(pass(cs, PassId::Fanout).nullNodes,
                  pass(cs, PassId::Split).nullNodes);
        EXPECT_EQ(pass(cs, PassId::Fanout).testNodes,
                  pass(cs, PassId::Split).testNodes);
        // Regalloc and emission do not reshape the TIL.
        EXPECT_EQ(pass(cs, PassId::RegAlloc).tilNodes,
                  pass(cs, PassId::Fanout).tilNodes);
        EXPECT_EQ(pass(cs, PassId::Emit).tilNodes,
                  pass(cs, PassId::Fanout).tilNodes);
        // The emitted program is exactly the post-fanout TIL.
        EXPECT_EQ(cs.totalInsts, pass(cs, PassId::Emit).tilNodes);
        EXPECT_EQ(cs.movInsts, pass(cs, PassId::Emit).movNodes);
        // The paper's mov-fanout overhead: a substantial but bounded
        // slice of all instructions (Fig. 4/5's move category; the
        // small proxies sit above the paper's ~20% static share
        // because their blocks are short).
        double movFrac = static_cast<double>(cs.movInsts) /
                         static_cast<double>(cs.totalInsts);
        EXPECT_GT(movFrac, 0.05);
        EXPECT_LT(movFrac, 0.80);
    }
}

TEST(PassStats, AllPresetsCompileUnderTilVerification)
{
    // The verifier re-checks every block between every pass; any
    // operand-totality or coverage bug in the backend fatals here.
    for (const auto &w : workloads::all()) {
        compileWorkload(w.name.c_str(), compiler::Options::compiled());
        compileWorkload(w.name.c_str(), compiler::Options::hand());
        compileWorkload(w.name.c_str(), compiler::Options::basicBlock());
    }
    SUCCEED();
}

// ---------------------------------------------------------------------
// Spill pass: no-op transparency, victim selection, forced spilling
// ---------------------------------------------------------------------

TEST(SpillPass, DisasmByteIdenticalWhenSpillingNeverTriggers)
{
    // Every pre-existing (non-BLAS) workload under all three presets:
    // the spill pass must record zero activity, and two independent
    // compiles must produce byte-identical disassembly — the pass is
    // invisible whenever pressure fits the register file.
    auto compileDisasm = [](const workloads::Workload &w,
                            compiler::Options opts,
                            compiler::CompileStats &cs) {
        wir::Module mod;
        w.build(mod);
        auto prog = compiler::compileToTrips(mod, opts, &cs);
        return isa::disasmProgram(prog);
    };
    for (const auto &w : workloads::all()) {
        if (w.suite == "blas")
            continue;  // the ladder's top rung spills by design
        for (auto opts : {compiler::Options::compiled(),
                          compiler::Options::hand(),
                          compiler::Options::basicBlock()}) {
            SCOPED_TRACE(w.name);
            compiler::CompileStats a, b;
            std::string d1 = compileDisasm(w, opts, a);
            std::string d2 = compileDisasm(w, opts, b);
            EXPECT_EQ(a.spilledValues, 0u);
            EXPECT_EQ(a.spillRounds, 0u);
            EXPECT_EQ(d1, d2);
        }
    }
}

TEST(SpillPass, RegisterTileMatmulSpillsAndStaysCorrect)
{
    // The BLAS ladder's 12x12 register-tiled matmul: 144 accumulators
    // live across the k-loop guarantee real spill activity, and the
    // spilled binary must still match the interpreter on both TRIPS
    // models.
    wir::Module mod;
    workloads::find("matmul_tiled_unroll").build(mod);
    i64 golden = core::runGolden(mod).retVal;

    auto opts = compiler::Options::compiled();
    opts.verifyTil = true;
    compiler::CompileStats cs;
    compiler::compileToTrips(mod, opts, &cs);
    EXPECT_GT(cs.spilledValues, 0u);
    EXPECT_GT(cs.spillSlots, 0u);
    EXPECT_GT(cs.spillLoads, 0u);
    EXPECT_GT(cs.spillStores, 0u);
    EXPECT_GE(cs.spillRounds, 1u);
    // Reloads are cached per block: never more loads than uses, and
    // one store per spilled definition site at minimum.
    EXPECT_GE(cs.spillStores, cs.spilledValues);

    auto run = core::runTrips(mod, opts, true);
    EXPECT_EQ(run.retVal, golden);
    EXPECT_EQ(run.uarch.retVal, golden);
}

namespace {

/** Two-block pressure graph: block 0 writes n values, block 1 reads
 *  them all — every value is live across the boundary. */
std::vector<HBlock>
pressureGraph(unsigned n)
{
    HBlock b0, b1;
    b0.label = "p.r0";
    b1.label = "p.r1";
    for (unsigned i = 0; i < n; ++i) {
        HWrite w;
        w.v = 100 + i;
        b0.writes.push_back(w);
        HRead r;
        r.v = 100 + i;
        b1.reads.push_back(r);
    }
    return {b0, b1};
}

} // namespace

TEST(SpillChooser, PicksJustEnoughVictimsToMeetBudget)
{
    auto hbs = pressureGraph(8);
    std::vector<std::vector<wir::Vreg>> live(2);
    std::vector<unsigned> depth(2, 0);
    auto plan = compiler::chooseSpills(
        hbs, live, depth, [](wir::Vreg) { return true; }, 5);
    EXPECT_TRUE(plan.feasible);
    EXPECT_EQ(plan.maxLive, 8u);
    EXPECT_EQ(plan.victims.size(), 3u);
    for (const auto &v : plan.victims) {
        EXPECT_EQ(v.lo, 0u);
        EXPECT_EQ(v.hi, 1u);
    }
}

TEST(SpillChooser, RespectsTheSpillablePredicate)
{
    // Only a subset of the live values may be sent to memory (the
    // pipeline excludes params and backend-invented vregs): victims
    // must come exclusively from the spillable set even when cheaper
    // candidates exist outside it.
    auto hbs = pressureGraph(6);
    std::vector<std::vector<wir::Vreg>> live(2);
    std::vector<unsigned> depth = {0, 0};
    auto plan = compiler::chooseSpills(
        hbs, live, depth,
        [](wir::Vreg v) { return v >= 103; },  // only the top 3 spillable
        4);
    ASSERT_TRUE(plan.feasible);
    EXPECT_EQ(plan.victims.size(), 2u);
    for (const auto &v : plan.victims)
        EXPECT_GE(v.v, 103u);
}

TEST(SpillChooser, ReportsInfeasibleWhenNothingIsSpillable)
{
    // The true hard-cap path that remains after the spill pass: peak
    // pressure with no spillable candidate (e.g. all ABI-fixed or
    // backend-invented values). The plan must come back infeasible
    // with a diagnosable detail string, which the pipeline turns into
    // the structured resource-exhausted CompileError.
    auto hbs = pressureGraph(8);
    std::vector<std::vector<wir::Vreg>> live(2);
    std::vector<unsigned> depth(2, 0);
    auto plan = compiler::chooseSpills(
        hbs, live, depth, [](wir::Vreg) { return false; }, 5);
    EXPECT_FALSE(plan.feasible);
    EXPECT_EQ(plan.maxLive, 8u);
    EXPECT_NE(plan.detail.find("no spillable candidate"),
              std::string::npos)
        << plan.detail;
    EXPECT_NE(plan.detail.find("8 live values"), std::string::npos)
        << plan.detail;
}

// ---------------------------------------------------------------------
// TIL verifier: positive case and hand-broken graphs
// ---------------------------------------------------------------------

TEST(TilVerify, WellFormedDiamondPasses)
{
    HBlock hb = skeleton();
    i32 t = addNode(hb, Opcode::TNEI, {READ0});
    i32 m1 = addNode(hb, Opcode::MOV, {READ0}, {}, t, true);
    i32 m2 = addNode(hb, Opcode::MOV, {READ0}, {}, t, false);
    HWrite w;
    w.v = 101;
    w.prods = {m1, m2};
    hb.writes.push_back(w);
    addExit(hb);
    EXPECT_EQ(compiler::til::verify(hb), "");
}

TEST(TilVerify, MissingOperandProducer)
{
    HBlock hb = skeleton();
    addNode(hb, Opcode::ADD, {READ0}, {});  // operand 1 unfed
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("has no producer"), std::string::npos) << err;
}

TEST(TilVerify, DoubleDeliveryToWrite)
{
    HBlock hb = skeleton();
    i32 m1 = addNode(hb, Opcode::MOV, {READ0});
    i32 m2 = addNode(hb, Opcode::MOV, {READ0});
    HWrite w;
    w.v = 101;
    w.prods = {m1, m2};  // both unpredicated: two tokens on every path
    hb.writes.push_back(w);
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("received two tokens"), std::string::npos) << err;
}

TEST(TilVerify, NullwComplementCoverageHole)
{
    // The write is fed only on the taken polarity; the complement path
    // starves it — exactly the class of bug the differential fuzzer
    // caught as blocks hanging at commit.
    HBlock hb = skeleton();
    i32 t = addNode(hb, Opcode::TNEI, {READ0});
    i32 m1 = addNode(hb, Opcode::MOV, {READ0}, {}, t, true);
    HWrite w;
    w.v = 101;
    w.prods = {m1};
    hb.writes.push_back(w);
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("coverage hole"), std::string::npos) << err;
}

TEST(TilVerify, PredicateRootedAtNonTest)
{
    HBlock hb = skeleton();
    i32 a = addNode(hb, Opcode::ADDI, {READ0});
    addNode(hb, Opcode::MOV, {READ0}, {}, a, true);
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("non-test"), std::string::npos) << err;
}

TEST(TilVerify, PredicatedStoreRejected)
{
    // Stores must settle on every path (store mask); gating belongs on
    // the operands via the NULLW idiom, never on the store itself.
    HBlock hb = skeleton();
    i32 t = addNode(hb, Opcode::TNEI, {READ0});
    addNode(hb, Opcode::SD, {READ0}, {READ0}, t, true);
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("predicated"), std::string::npos) << err;
}

TEST(TilVerify, DataflowCycle)
{
    HBlock hb = skeleton();
    i32 m1 = addNode(hb, Opcode::MOV, {READ0});
    i32 m2 = addNode(hb, Opcode::MOV, {m1});
    hb.nodes[m1].in0 = {m2};  // m1 <-> m2
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("cycle"), std::string::npos) << err;
}

TEST(TilVerify, DuplicateLsid)
{
    HBlock hb = skeleton();
    i32 s1 = addNode(hb, Opcode::SD, {READ0}, {READ0});
    i32 s2 = addNode(hb, Opcode::SD, {READ0}, {READ0});
    hb.nodes[s1].lsid = 0;
    hb.nodes[s2].lsid = 0;
    addExit(hb);
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("duplicate LSID"), std::string::npos) << err;
}

TEST(TilVerify, TwoExitsFireOnOnePath)
{
    HBlock hb = skeleton();
    addExit(hb);
    addExit(hb);  // two unpredicated exits: both fire on every path
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("exits fired"), std::string::npos) << err;
}

TEST(TilVerify, NoExitRejected)
{
    HBlock hb = skeleton();
    addNode(hb, Opcode::MOV, {READ0});
    auto err = compiler::til::verify(hb);
    EXPECT_NE(err.find("no block exit"), std::string::npos) << err;
}

TEST(TilVerify, SizeLimitsEnforcedWhenRequested)
{
    HBlock hb = skeleton();
    i32 prev = READ0;
    for (int i = 0; i < 200; ++i)
        prev = addNode(hb, Opcode::ADDI, {prev});
    addExit(hb);
    EXPECT_EQ(compiler::til::verify(hb), "");  // no limits pre-split
    compiler::til::VerifyOptions vo;
    vo.sizeLimits = true;
    auto err = compiler::til::verify(hb, vo);
    EXPECT_NE(err.find("exceed"), std::string::npos) << err;
}

TEST(TilDump, NamesNodesReadsWritesAndTargets)
{
    HBlock hb = skeleton();
    i32 t = addNode(hb, Opcode::TNEI, {READ0});
    i32 m1 = addNode(hb, Opcode::MOV, {READ0}, {}, t, true);
    HWrite w;
    w.v = 101;
    w.prods = {m1};
    hb.writes.push_back(w);
    addExit(hb);
    std::string d = compiler::til::dump(hb);
    EXPECT_NE(d.find("til block t.r0"), std::string::npos);
    EXPECT_NE(d.find("tnei"), std::string::npos);
    EXPECT_NE(d.find("p=+n0"), std::string::npos);
    EXPECT_NE(d.find("-> t.r1"), std::string::npos);
    EXPECT_NE(d.find("write w0: v101"), std::string::npos);
}

// ---------------------------------------------------------------------
// Block splitting
// ---------------------------------------------------------------------

TEST(BlockSplitting, LongChainSplitsIntoVerifiedChunks)
{
    HBlock hb = skeleton();
    i32 prev = READ0;
    for (int i = 0; i < 300; ++i)
        prev = addNode(hb, Opcode::ADDI, {prev});
    HWrite w;
    w.v = 101;
    w.prods = {prev};
    hb.writes.push_back(w);
    addExit(hb);
    hb.wirMembers = {0};

    wir::Vreg next = 200;
    compiler::CompileStats cs;
    auto chunks = compiler::splitPass(std::move(hb), "t",
                                      [&] { return next++; }, &cs);
    ASSERT_GT(chunks.size(), 2u);
    EXPECT_EQ(cs.splitBlocks, static_cast<unsigned>(chunks.size() - 1));
    EXPECT_GT(cs.spillWrites, 0u);

    compiler::til::VerifyOptions vo;
    vo.sizeLimits = true;
    for (size_t i = 0; i < chunks.size(); ++i) {
        SCOPED_TRACE("chunk " + std::to_string(i));
        EXPECT_EQ(compiler::til::verify(chunks[i], vo), "");
        EXPECT_EQ(compiler::checkBlockLimits(chunks[i]), "");
        // Chain labels and BRO links.
        std::string want = i == 0 ? "t.r0"
                                  : "t.r0.s" + std::to_string(i);
        EXPECT_EQ(chunks[i].label, want);
        if (i + 1 < chunks.size()) {
            const TNode &br = chunks[i].nodes.back();
            EXPECT_EQ(br.op, Opcode::BRO);
            EXPECT_EQ(br.targetLabel, chunks[i + 1].label);
        }
    }
    // The original exit survives in the final chunk.
    EXPECT_EQ(chunks.back().nodes.back().targetLabel, "t.r1");
}

TEST(BlockSplitting, FittingBlockReturnedUnchanged)
{
    HBlock hb = skeleton();
    i32 a = addNode(hb, Opcode::ADDI, {READ0});
    HWrite w;
    w.v = 101;
    w.prods = {a};
    hb.writes.push_back(w);
    addExit(hb);
    wir::Vreg next = 200;
    compiler::CompileStats cs;
    auto chunks = compiler::splitPass(std::move(hb), "t",
                                      [&] { return next++; }, &cs);
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(cs.splitBlocks, 0u);
    EXPECT_EQ(chunks[0].nodes.size(), 2u);
}

TEST(BlockSplitting, ManyValuesLiveAcrossCallPreviouslyFatal)
{
    // Forty values live across a call: the caller-save spill region
    // needs 40 stores and the continuation reload region 40 loads plus
    // 40 reads — far past the 32-LSID / 32-read block limits the seed
    // backend fataled on ("single WIR block overflows a TRIPS block").
    // The frame is also wider than the 9-bit load/store displacement.
    Module mod;
    {
        FunctionBuilder fb(mod, "inc", 1);
        fb.ret(fb.addi(fb.param(0), 1));
        fb.finish();
    }
    {
        FunctionBuilder fb(mod, "main", 0);
        std::vector<wir::Vreg> vals;
        auto x = fb.iconst(3);
        for (int i = 0; i < 40; ++i) {
            x = fb.add(x, fb.muli(x, i % 7 + 1));
            vals.push_back(x);
        }
        auto acc = fb.call("inc", {vals[0]});
        for (auto v : vals)
            acc = fb.bxor(fb.add(acc, v), fb.shli(acc, 1));
        fb.ret(acc);
        fb.finish();
    }
    ASSERT_EQ(wir::verifyModule(mod), "");

    i64 golden = core::runGolden(mod).retVal;
    auto opts = compiler::Options::compiled();
    opts.verifyTil = true;
    compiler::CompileStats cs;
    compiler::compileToTrips(mod, opts, &cs);
    EXPECT_GT(cs.splitBlocks, 0u);
    EXPECT_GT(cs.spillWrites, 0u);

    auto run = core::runTrips(mod, opts, true);
    EXPECT_EQ(run.retVal, golden);
    EXPECT_EQ(run.uarch.retVal, golden);
    auto hand = core::runTrips(mod, compiler::Options::hand(), false);
    EXPECT_EQ(hand.retVal, golden);
}

TEST(BlockSplitting, DumpAndStatsDebugModesRun)
{
    // The --dump-til / verify-between-passes debug modes on a split
    // compile: the dump must name every pass and the split chunks.
    Module mod;
    FunctionBuilder fb(mod, "main", 0);
    auto x = fb.iconst(1);
    for (int i = 0; i < 120; ++i)
        x = fb.add(x, fb.select(fb.cmpLt(x, fb.iconst(i)), x,
                                fb.iconst(i)));
    fb.ret(x);
    fb.finish();

    std::ostringstream dump;
    auto opts = compiler::Options::compiled();
    opts.verifyTil = true;
    opts.tilDump = &dump;
    compiler::CompileStats cs;
    compiler::compileToTrips(mod, opts, &cs);
    EXPECT_NE(dump.str().find("=== TIL after if-convert"),
              std::string::npos);
    EXPECT_NE(dump.str().find("=== TIL after split"), std::string::npos);
    EXPECT_NE(dump.str().find("=== TIL after fanout"), std::string::npos);
}
