/**
 * @file
 * The relaxed-quantum parallel chip engine's contract (DESIGN.md §11):
 *
 *  - N=1 parallel is bit-identical to the serial lockstep reference
 *    (the shadow clone never diverges when there is no other core).
 *  - A fixed (mix, config, quantum) is exactly replayable: two runs
 *    produce byte-identical chip results, and the worker thread cap
 *    (T=1 vs T=8) cannot change a single statistic.
 *  - Architectural results (retVal, final memory, committed blocks)
 *    are engine-invariant for every quantum, asserted across
 *    all-workload 4-core mixes (bounded by default; the full
 *    round-robin sweep runs under the `slow` ctest label).
 *
 * This binary is also the TSan stage's target in CI: every test
 * drives real worker threads through the barrier/replay machinery.
 */
#include <gtest/gtest.h>

#include "compiler/codegen.hh"
#include "harness/diff.hh"
#include "testutil.hh"
#include "uarch/chip_sim.hh"
#include "wir/builder.hh"
#include "wir/interp.hh"
#include "workloads/workload.hh"

using namespace trips;
using wir::FunctionBuilder;
using wir::MemWidth;
using wir::Module;

namespace {

/** Strided store/load walk over a buffer: L1D-streaming, L2-heavy
 *  (same shape as test_chip.cc's contention driver). */
void
buildMemStress(Module &mod, i64 stride, int iters)
{
    Addr buf = mod.addGlobal("buf", 192 * 1024);
    FunctionBuilder fb(mod, "main", 0);
    auto base = fb.iconst(static_cast<i64>(buf));
    auto i = fb.iconst(0);
    auto acc = fb.iconst(0);
    fb.label("loop");
    auto slot = fb.add(
        base, fb.shli(fb.andi(fb.mul(i, fb.iconst(stride)), 24575), 3));
    fb.store(slot, fb.add(i, acc), 0, MemWidth::B8);
    fb.assign(acc, fb.bxor(acc, fb.load(slot, 0, MemWidth::B8)));
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(iters)), "loop", "done");
    fb.label("done");
    fb.ret(acc);
    fb.finish();
}

struct MixProgram
{
    Module mod;
    isa::Program prog;
};

/** Compile a strided mem-stress program per core. */
std::vector<std::unique_ptr<MixProgram>>
buildStressMix(const std::vector<i64> &strides, int iters)
{
    std::vector<std::unique_ptr<MixProgram>> ps;
    for (i64 s : strides) {
        auto mp = std::make_unique<MixProgram>();
        buildMemStress(mp->mod, s, iters);
        mp->prog = compiler::compileToTrips(
            mp->mod, compiler::Options::compiled());
        ps.push_back(std::move(mp));
    }
    return ps;
}

struct ChipRun
{
    uarch::ChipResult res;
    std::vector<std::unique_ptr<MemImage>> mems;
};

ChipRun
runChip(const std::vector<std::unique_ptr<MixProgram>> &ps,
        const uarch::ChipConfig &cfg)
{
    ChipRun run;
    std::vector<uarch::ChipJob> jobs;
    for (auto &mp : ps) {
        run.mems.push_back(std::make_unique<MemImage>());
        wir::Interp::loadGlobals(mp->mod, *run.mems.back());
        jobs.push_back({&mp->prog, run.mems.back().get()});
    }
    uarch::ChipSim chip(jobs, cfg);
    run.res = chip.run();
    return run;
}

/** Every scalar UarchResult field plus the OPN profile. */
void
expectSameUarch(const uarch::UarchResult &a, const uarch::UarchResult &b)
{
    EXPECT_EQ(a.retVal, b.retVal);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.blocksCommitted, b.blocksCommitted);
    EXPECT_EQ(a.blocksFlushed, b.blocksFlushed);
    EXPECT_EQ(a.instsFetched, b.instsFetched);
    EXPECT_EQ(a.instsFired, b.instsFired);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.loadViolationFlushes, b.loadViolationFlushes);
    EXPECT_EQ(a.icacheMissStalls, b.icacheMissStalls);
    EXPECT_EQ(a.l1dHits, b.l1dHits);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l1iHits, b.l1iHits);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l1dWritebacks, b.l1dWritebacks);
    EXPECT_EQ(a.l2Writebacks, b.l2Writebacks);
    EXPECT_EQ(a.loadsExecuted, b.loadsExecuted);
    EXPECT_EQ(a.storesCommitted, b.storesCommitted);
    EXPECT_EQ(a.bytesL1, b.bytesL1);
    EXPECT_EQ(a.bytesL2, b.bytesL2);
    EXPECT_EQ(a.bytesMem, b.bytesMem);
    EXPECT_EQ(a.peakInstsInFlight, b.peakInstsInFlight);
    EXPECT_DOUBLE_EQ(a.avgBlocksInFlight, b.avgBlocksInFlight);
    EXPECT_DOUBLE_EQ(a.avgInstsInFlight, b.avgInstsInFlight);
    EXPECT_EQ(a.opnPackets, b.opnPackets);
    EXPECT_EQ(a.localBypasses, b.localBypasses);
    for (size_t c = 0; c < a.opnHops.size(); ++c)
        EXPECT_EQ(a.opnHops[c].samples(), b.opnHops[c].samples());
}

/** Byte-identical chip results: every per-core result, every uncore
 *  counter, every OCN class. */
void
expectSameChip(const uarch::ChipResult &a, const uarch::ChipResult &b)
{
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (size_t i = 0; i < a.cores.size(); ++i)
        expectSameUarch(a.cores[i], b.cores[i]);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.anyFuelExhausted, b.anyFuelExhausted);
    EXPECT_EQ(a.l2DirtyDrained, b.l2DirtyDrained);
    EXPECT_DOUBLE_EQ(a.ocnOccupancy, b.ocnOccupancy);

    EXPECT_EQ(a.uncore.requests, b.uncore.requests);
    EXPECT_EQ(a.uncore.l2Hits, b.uncore.l2Hits);
    EXPECT_EQ(a.uncore.l2Misses, b.uncore.l2Misses);
    EXPECT_EQ(a.uncore.l2Writebacks, b.uncore.l2Writebacks);
    EXPECT_EQ(a.uncore.l1Writebacks, b.uncore.l1Writebacks);
    EXPECT_EQ(a.uncore.bankConflicts, b.uncore.bankConflicts);
    EXPECT_EQ(a.uncore.bankConflictCycles, b.uncore.bankConflictCycles);
    EXPECT_EQ(a.uncore.dramRequests, b.uncore.dramRequests);
    EXPECT_EQ(a.uncore.dramRowHits, b.uncore.dramRowHits);
    EXPECT_EQ(a.uncore.requestsByCore, b.uncore.requestsByCore);
    EXPECT_EQ(a.uncore.conflictsByCore, b.uncore.conflictsByCore);

    EXPECT_EQ(a.ocn.flitHops, b.ocn.flitHops);
    for (size_t c = 0; c < net::OCN_NUM_CLASSES; ++c) {
        EXPECT_EQ(a.ocn.packets[c], b.ocn.packets[c]);
        EXPECT_EQ(a.ocn.bytes[c], b.ocn.bytes[c]);
        EXPECT_EQ(a.ocn.hops[c].samples(), b.ocn.hops[c].samples());
    }
}

/** Engine-invariant architectural results: retVal, committed block
 *  stream, and the final memory image of every core. */
void
expectSameArchitecture(const std::vector<std::unique_ptr<MixProgram>> &ps,
                       const ChipRun &a, const ChipRun &b,
                       const std::string &label)
{
    ASSERT_EQ(a.res.cores.size(), b.res.cores.size());
    for (size_t i = 0; i < a.res.cores.size(); ++i) {
        EXPECT_EQ(a.res.cores[i].retVal, b.res.cores[i].retVal)
            << label << " core " << i;
        EXPECT_EQ(a.res.cores[i].blocksCommitted,
                  b.res.cores[i].blocksCommitted)
            << label << " core " << i;
        EXPECT_EQ(a.res.cores[i].storesCommitted,
                  b.res.cores[i].storesCommitted)
            << label << " core " << i;
        std::string who = label + " core " + std::to_string(i);
        EXPECT_EQ(harness::compareDataSegments(ps[i]->mod, *a.mems[i],
                                               *b.mems[i], who.c_str()),
                  "");
    }
}

} // namespace

// ---------------------------------------------------------------------
// N=1: with no other core the shadow never diverges from the real
// uncore, so the parallel engine must be bit-identical to serial.
// ---------------------------------------------------------------------

TEST(ParallelEngine, OneCoreBitIdenticalToSerial)
{
    auto ps = buildStressMix({97}, 3000);

    uarch::ChipConfig serial;
    serial.numCores = 1;
    uarch::ChipConfig par = serial;
    par.engine = uarch::ChipEngine::Parallel;
    par.quantum = 512;

    auto rs = runChip(ps, serial);
    auto rp = runChip(ps, par);
    expectSameChip(rs.res, rp.res);
    expectSameArchitecture(ps, rs, rp, "one-core");
}

// ---------------------------------------------------------------------
// Determinism: replayable run-to-run, thread-count-independent.
// ---------------------------------------------------------------------

TEST(ParallelEngine, SameMixConfigQuantumIsByteIdenticalTwice)
{
    auto ps = buildStressMix({97, 193, 389, 769}, 1500);
    uarch::ChipConfig cfg;
    cfg.numCores = 4;
    cfg.engine = uarch::ChipEngine::Parallel;
    cfg.quantum = 256;

    auto r1 = runChip(ps, cfg);
    auto r2 = runChip(ps, cfg);
    expectSameChip(r1.res, r2.res);
    expectSameArchitecture(ps, r1, r2, "replay");

    // The mix really contends (the determinism claim is not vacuous).
    EXPECT_GT(r1.res.uncore.bankConflicts, 0u);
}

TEST(ParallelEngine, ThreadCapOneVsEightIsIdentical)
{
    auto ps = buildStressMix({97, 193, 389, 769}, 1500);
    uarch::ChipConfig cfg;
    cfg.numCores = 4;
    cfg.engine = uarch::ChipEngine::Parallel;
    cfg.quantum = 256;

    cfg.threads = 1;
    auto r1 = runChip(ps, cfg);
    cfg.threads = 8;
    auto r8 = runChip(ps, cfg);
    expectSameChip(r1.res, r8.res);
    expectSameArchitecture(ps, r1, r8, "threads");
}

// ---------------------------------------------------------------------
// Architectural equality with the serial reference, across quanta.
// The uncore is timing-only, so retVal / memory / committed blocks
// must be engine- and quantum-invariant even though cycle counts are
// quantum-sensitive.
// ---------------------------------------------------------------------

TEST(ParallelEngine, ArchitecturallyEqualToSerialAcrossQuanta)
{
    auto ps = buildStressMix({97, 389}, 2000);
    uarch::ChipConfig serial;
    serial.numCores = 2;
    auto rs = runChip(ps, serial);

    for (unsigned q : {1u, 64u, 1024u, 1u << 20}) {
        uarch::ChipConfig par = serial;
        par.engine = uarch::ChipEngine::Parallel;
        par.quantum = q;
        auto rp = runChip(ps, par);
        expectSameArchitecture(ps, rs, rp,
                               "quantum=" + std::to_string(q));
        // And each quantum is individually replayable.
        auto rp2 = runChip(ps, par);
        expectSameChip(rp.res, rp2.res);
    }
}

// ---------------------------------------------------------------------
// All-workload 4-core mixes: round-robin groups over the registry,
// serial vs parallel architectural equality. Bounded by default; the
// slow label (TRIPSIM_SLOW_TESTS=1) sweeps every group.
// ---------------------------------------------------------------------

TEST(ParallelChipDiff, FourCoreWorkloadMixesMatchSerial)
{
    const auto &all = workloads::all();
    const unsigned groups =
        static_cast<unsigned>((all.size() + 3) / 4);
    const unsigned bounded = testutil::slowScale(2, groups);

    for (unsigned g = 0; g < std::min(bounded, groups); ++g) {
        std::vector<std::unique_ptr<MixProgram>> ps;
        std::string names;
        for (unsigned k = 0; k < 4; ++k) {
            const auto &w = all[(4 * g + k) % all.size()];
            auto mp = std::make_unique<MixProgram>();
            w.build(mp->mod);
            mp->prog = compiler::compileToTrips(
                mp->mod, compiler::Options::compiled());
            ps.push_back(std::move(mp));
            names += (k ? "," : "") + w.name;
        }

        uarch::ChipConfig serial;
        serial.numCores = 4;
        uarch::ChipConfig par = serial;
        par.engine = uarch::ChipEngine::Parallel;

        auto rs = runChip(ps, serial);
        auto rp = runChip(ps, par);
        expectSameArchitecture(ps, rs, rp, "mix[" + names + "]");
        EXPECT_FALSE(rp.res.anyFuelExhausted) << names;
    }
}
