/**
 * @file
 * Engine-equivalence suite for the pre-decoded threaded-code
 * functional engine (src/trips/predecode.hh): the fast engine must be
 * architecturally *bit-identical* to the legacy token-scatter
 * interpreter — retVal, final memory image, serialized ISA stats,
 * committed-block count, and the full BlockObserver record stream —
 * on every registered workload under both compiler presets, across a
 * differential fuzz slice, and through checkpoints that cross engines
 * in both directions. Plus unit tests of decodeBlock itself (cyclic
 * blocks must fall back) and the decoded-block cache accounting.
 */

#include <gtest/gtest.h>

#include "compiler/codegen.hh"
#include "harness/fuzzgen.hh"
#include "harness/sweep.hh"
#include "sim/checkpoint.hh"
#include "trips/func_sim.hh"
#include "trips/predecode.hh"
#include "wir/interp.hh"
#include "workloads/workload.hh"

#include "testutil.hh"

using namespace trips;

namespace {

std::vector<u8>
isaBytes(const sim::IsaStats &s)
{
    sim::ByteWriter w;
    sim::putIsaStats(w, s);
    return w.data();
}

/** One engine's complete architectural outcome for a program. */
struct EngineRun
{
    i64 retVal = 0;
    u64 blocks = 0;
    bool fuelExhausted = false;
    std::vector<u8> stats;
    MemImage mem;
};

EngineRun
runEngine(const isa::Program &prog, const wir::Module &mod,
          sim::FuncEngine engine, u64 fuel = 50'000'000)
{
    EngineRun r;
    wir::Interp::loadGlobals(mod, r.mem);
    sim::FuncSim fsim(prog, r.mem, engine);
    auto res = fsim.run(fuel);
    r.retVal = res.retVal;
    r.blocks = fsim.blocksExecuted();
    r.fuelExhausted = res.fuelExhausted;
    r.stats = isaBytes(res.stats);
    return r;
}

/** Assert the two engines produced byte-identical outcomes. */
void
expectIdentical(const EngineRun &legacy, const EngineRun &fast,
                const std::string &what)
{
    EXPECT_EQ(legacy.retVal, fast.retVal) << what;
    EXPECT_EQ(legacy.blocks, fast.blocks) << what;
    EXPECT_EQ(legacy.fuelExhausted, fast.fuelExhausted) << what;
    EXPECT_EQ(legacy.stats, fast.stats) << what << ": ISA stats differ";
    EXPECT_EQ("", sim::diffMemImages(legacy.mem, fast.mem, what.c_str()));
}

// ---------------------------------------------------------------------
// Every workload, both presets: full architectural byte-identity.
// ---------------------------------------------------------------------

TEST(PredecodeEquiv, AllWorkloadsBothPresets)
{
    unsigned checked = 0;
    for (const auto &w : workloads::all()) {
        wir::Module mod;
        w.build(mod);
        struct
        {
            const char *name;
            compiler::Options opts;
            bool enabled;
        } presets[] = {
            {"compiled", compiler::Options::compiled(), true},
            {"hand", compiler::Options::hand(), w.isSimple},
        };
        for (const auto &p : presets) {
            if (!p.enabled)
                continue;
            auto prog = compiler::compileToTrips(mod, p.opts);
            auto legacy =
                runEngine(prog, mod, sim::FuncEngine::Legacy);
            auto fast =
                runEngine(prog, mod, sim::FuncEngine::Predecoded);
            expectIdentical(legacy, fast,
                            w.name + "/" + p.name);
            ++checked;
        }
    }
    // The registry must not silently shrink under this suite.
    EXPECT_GE(checked, workloads::all().size());
}

// ---------------------------------------------------------------------
// Observer stream: with an observer attached the fast engine must
// deliver exactly the legacy record stream (it is the input to the
// Fig. 7/10 studies, so "roughly equal" is not enough).
// ---------------------------------------------------------------------

/** Serializes every committed-block record into one byte stream. */
class RecordingObserver : public sim::BlockObserver
{
  public:
    void onBlockCommit(const isa::Block &, const sim::BlockRecord &rec)
        override
    {
        put32(rec.blockIdx);
        put32(rec.nextBlock);
        bytes.push_back(rec.exitTaken);
        bytes.push_back(rec.isCall);
        bytes.push_back(rec.isRet);
        bytes.push_back(rec.halts);
        put32(rec.branchInst);
        put32(static_cast<u32>(rec.fired.size()));
        for (const auto &f : rec.fired) {
            put32(f.inst);
            put32(static_cast<u32>(f.prodOp0));
            put32(static_cast<u32>(f.prodOp1));
            put32(static_cast<u32>(f.prodPred));
            put32(static_cast<u32>(f.addr));
            bytes.push_back(f.width);
            bytes.push_back(f.nullToken);
        }
        put32(static_cast<u32>(rec.writeProducer.size()));
        for (size_t i = 0; i < rec.writeProducer.size(); ++i) {
            put32(static_cast<u32>(rec.writeProducer[i]));
            bytes.push_back(rec.writeIsNull[i]);
        }
    }

    std::vector<u8> bytes;

  private:
    void put32(u32 v)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(static_cast<u8>(v >> (8 * i)));
    }
};

TEST(PredecodeEquiv, ObserverStreamIdentical)
{
    for (const char *name : {"autocor", "a2time", "matmul"}) {
        wir::Module mod;
        workloads::find(name).build(mod);
        auto prog =
            compiler::compileToTrips(mod, compiler::Options::compiled());
        std::vector<u8> streams[2];
        i64 ret[2] = {0, 0};
        sim::FuncEngine engines[2] = {sim::FuncEngine::Legacy,
                                      sim::FuncEngine::Predecoded};
        for (int e = 0; e < 2; ++e) {
            MemImage mem;
            wir::Interp::loadGlobals(mod, mem);
            sim::FuncSim fsim(prog, mem, engines[e]);
            RecordingObserver rec;
            fsim.addObserver(&rec);
            ret[e] = fsim.run().retVal;
            streams[e] = std::move(rec.bytes);
        }
        EXPECT_EQ(ret[0], ret[1]) << name;
        EXPECT_FALSE(streams[0].empty()) << name;
        EXPECT_EQ(streams[0], streams[1])
            << name << ": observer record streams differ";
    }
}

// ---------------------------------------------------------------------
// Differential fuzz slice: generated programs, legacy vs predecoded.
// ---------------------------------------------------------------------

TEST(PredecodeEquiv, FuzzSlice)
{
    const u64 count = testutil::slowScale(500, 2000);
    harness::ShapeConfig shape;
    for (u64 i = 0; i < count; ++i) {
        u64 seed = harness::taskSeed(0xdec0ded, i);
        wir::Module mod = harness::generate(seed, shape);
        auto prog =
            compiler::compileToTrips(mod, compiler::Options::compiled());
        auto legacy = runEngine(prog, mod, sim::FuncEngine::Legacy);
        auto fast = runEngine(prog, mod, sim::FuncEngine::Predecoded);
        expectIdentical(legacy, fast, "seed " + std::to_string(seed));
        if (HasFailure()) {
            ADD_FAILURE() << "repro: sweep_main --repro " << seed;
            break;
        }
    }
}

// ---------------------------------------------------------------------
// Checkpoints crossing engines, both directions: a snapshot taken by
// one engine restored into the other must finish bit-identically to
// the uninterrupted run (resumability is engine-independent state).
// ---------------------------------------------------------------------

TEST(PredecodeEquiv, CheckpointCrossesEngines)
{
    wir::Module mod;
    workloads::find("autocor").build(mod);
    auto prog =
        compiler::compileToTrips(mod, compiler::Options::compiled());
    auto straight = runEngine(prog, mod, sim::FuncEngine::Legacy);
    ASSERT_FALSE(straight.fuelExhausted);

    sim::FuncEngine dirs[2][2] = {
        {sim::FuncEngine::Legacy, sim::FuncEngine::Predecoded},
        {sim::FuncEngine::Predecoded, sim::FuncEngine::Legacy},
    };
    for (const auto &d : dirs) {
        // Walk in slices on d[0], snapshot each boundary, resume the
        // snapshot on d[1] and demand the straight run's outcome.
        MemImage wMem;
        wir::Interp::loadGlobals(mod, wMem);
        sim::FuncSim walker(prog, wMem, d[0]);
        const u64 every = 500;
        unsigned boundaries = 0;
        for (unsigned k = 0; k < 5; ++k) {
            walker.run(every);
            if (walker.halted())
                break;
            sim::Checkpoint ck;
            walker.snapshot(ck);
            // Byte format exercised on the crossing too.
            sim::Checkpoint rck = sim::deserializeCheckpoint(
                sim::serializeCheckpoint(ck));
            ++boundaries;

            MemImage rMem;
            sim::FuncSim resumed(prog, rMem, d[1]);
            resumed.restore(rck);
            auto rr = resumed.run();
            ASSERT_FALSE(rr.fuelExhausted);
            EXPECT_EQ(straight.retVal, rr.retVal);
            EXPECT_EQ(straight.blocks, resumed.blocksExecuted());
            EXPECT_EQ(straight.stats, isaBytes(rr.stats));
            EXPECT_EQ("", sim::diffMemImages(straight.mem, rMem,
                                             "crossed-engine mem"));
        }
        EXPECT_GE(boundaries, 2u)
            << "workload too short to exercise engine crossing";
    }
}

// ---------------------------------------------------------------------
// decodeBlock unit tests.
// ---------------------------------------------------------------------

/** Smallest complete block: GENS feeding the lone write, plus RET. */
isa::Block
trivialBlock()
{
    isa::Block b;
    b.label = "triv";
    isa::Instruction gens;
    gens.op = isa::Opcode::GENS;
    gens.imm = 7;
    gens.targets[0] = {isa::Target::Kind::Write, 0};
    b.insts.push_back(gens);
    isa::Instruction ret;
    ret.op = isa::Opcode::RET;
    b.insts.push_back(ret);
    b.writes.push_back(isa::WriteInst{3});
    return b;
}

TEST(PredecodeUnit, TrivialBlockDecodes)
{
    auto d = sim::decodeBlock(trivialBlock());
    EXPECT_TRUE(d.usable);
    ASSERT_EQ(d.n, 2);
    // Sentinel terminates the schedule.
    ASSERT_EQ(d.insts.size(), 3u);
    EXPECT_EQ(d.insts[2].handler, sim::H_DONE);
    EXPECT_GT(d.bytes(), 0u);
}

TEST(PredecodeUnit, DataflowCycleFallsBack)
{
    // Two MOVs feeding each other: no topological fire schedule
    // exists, so the decoder must refuse and leave the legacy
    // interpreter to raise its own diagnosis.
    isa::Block b = trivialBlock();
    isa::Instruction m0, m1;
    m0.op = isa::Opcode::MOV;
    m1.op = isa::Opcode::MOV;
    m0.targets[0] = {isa::Target::Kind::Op0, 3}; // m1's slot
    m1.targets[0] = {isa::Target::Kind::Op0, 2}; // m0's slot
    b.insts.push_back(m0);
    b.insts.push_back(m1);
    auto d = sim::decodeBlock(b);
    EXPECT_FALSE(d.usable);
}

TEST(PredecodeUnit, LsidOrderCycleFallsBack)
{
    // A later-LSID load feeding the address of an earlier-LSID store:
    // the LSID chain orders store before load, the dataflow edge
    // orders load before store — combined graph is cyclic.
    isa::Block b;
    b.label = "lsidcycle";
    isa::Instruction addr;
    addr.op = isa::Opcode::GENS;
    addr.imm = 64;
    addr.targets[0] = {isa::Target::Kind::Op0, 1}; // load address
    b.insts.push_back(addr);
    isa::Instruction ld;
    ld.op = isa::Opcode::LD;
    ld.lsid = 1;
    ld.targets[0] = {isa::Target::Kind::Op0, 2}; // store address
    b.insts.push_back(ld);
    isa::Instruction st;
    st.op = isa::Opcode::SD;
    st.lsid = 0;
    b.insts.push_back(st);
    // Store value operand.
    isa::Instruction val;
    val.op = isa::Opcode::GENS;
    val.imm = 1;
    val.targets[0] = {isa::Target::Kind::Op1, 2};
    b.insts.push_back(val);
    isa::Instruction ret;
    ret.op = isa::Opcode::RET;
    b.insts.push_back(ret);
    b.storeMask = 1u << 0;
    auto d = sim::decodeBlock(b);
    EXPECT_FALSE(d.usable);
}

// ---------------------------------------------------------------------
// Page-cache invalidation: the fast path keeps a one-entry page cache,
// and a page-crossing store falls back to MemImage::write, which can
// create the very page the cache recorded as absent. Sequence inside a
// single block: load from a not-yet-resident page (caches pageR ==
// nullptr), an unaligned store straddling into that page, then a load
// that must observe the stored bytes, not stale zeros.
// ---------------------------------------------------------------------

TEST(PredecodeUnit, PageCrossingStoreInvalidatesPageCache)
{
    constexpr i32 kPage = 0x5000;         // page 5: never touched before
    constexpr i32 kStraddle = kPage - 4;  // 8-byte store spans pages 4/5

    isa::Block b;
    b.label = "pagex";
    b.insts.resize(8);
    b.insts[0].op = isa::Opcode::GENS;    // probe-load address
    b.insts[0].imm = kPage;
    b.insts[0].targets[0] = {isa::Target::Kind::Op0, 1};
    b.insts[1].op = isa::Opcode::LW;      // misses: page not resident
    b.insts[1].lsid = 0;
    b.insts[2].op = isa::Opcode::GENS;    // straddling store address
    b.insts[2].imm = kStraddle;
    b.insts[2].targets[0] = {isa::Target::Kind::Op0, 4};
    b.insts[3].op = isa::Opcode::GENS;    // all-ones store value
    b.insts[3].imm = -1;
    b.insts[3].targets[0] = {isa::Target::Kind::Op1, 4};
    b.insts[4].op = isa::Opcode::SD;
    b.insts[4].lsid = 1;
    b.insts[5].op = isa::Opcode::GENS;    // re-load address
    b.insts[5].imm = kPage;
    b.insts[5].targets[0] = {isa::Target::Kind::Op0, 6};
    b.insts[6].op = isa::Opcode::LW;      // must see the stored bytes
    b.insts[6].lsid = 2;
    b.insts[6].targets[0] = {isa::Target::Kind::Write, 0};
    b.insts[7].op = isa::Opcode::RET;
    b.writes.push_back(isa::WriteInst{sim::FuncSim::RETVAL_REG});
    b.storeMask = 1u << 1;

    isa::Program prog;
    prog.addBlock(std::move(b));
    ASSERT_EQ("", prog.finalize());

    for (auto eng :
         {sim::FuncEngine::Legacy, sim::FuncEngine::Predecoded}) {
        MemImage mem;
        sim::FuncSim fsim(prog, mem, eng);
        auto res = fsim.run();
        EXPECT_EQ(res.retVal, -1)
            << (eng == sim::FuncEngine::Legacy ? "legacy" : "predecoded")
            << ": load after straddling store saw stale page cache";
        if (eng == sim::FuncEngine::Predecoded) {
            // The block must take the fast path for this to test it.
            EXPECT_EQ(fsim.decodedFallbacks(), 0u);
        }
    }
}

// ---------------------------------------------------------------------
// Stores and branches never deliver tokens in the legacy engine, so
// encoded targets on them (representable in the block format, though
// validateBlock rejects them) must not count as operand messages.
// ---------------------------------------------------------------------

TEST(PredecodeUnit, StoreAndBranchTargetsCountNoOperandMessages)
{
    isa::Block b;
    b.label = "stmsg";
    b.insts.resize(6);
    b.insts[0].op = isa::Opcode::GENS;    // store address
    b.insts[0].imm = 0x100;
    b.insts[0].targets[0] = {isa::Target::Kind::Op0, 2};
    b.insts[1].op = isa::Opcode::GENS;    // store value
    b.insts[1].imm = 5;
    b.insts[1].targets[0] = {isa::Target::Kind::Op1, 2};
    b.insts[2].op = isa::Opcode::SB;
    b.insts[2].lsid = 0;
    b.insts[3].op = isa::Opcode::GENS;    // legit producer for the MOV
    b.insts[3].imm = 9;
    b.insts[3].targets[0] = {isa::Target::Kind::Op0, 4};
    b.insts[4].op = isa::Opcode::MOV;
    b.insts[5].op = isa::Opcode::RET;
    b.storeMask = 1u << 0;

    isa::Program prog;
    prog.addBlock(std::move(b));
    ASSERT_EQ("", prog.finalize());

    // Inject encoded targets on the store and the branch after
    // validation (their formats carry no target fields, so finalize
    // would reject them): both point at the MOV's unused Op1 slot.
    auto &mb = prog.mutableBlock(0);
    mb.insts[2].targets[0] = {isa::Target::Kind::Op1, 4};
    mb.insts[5].targets[0] = {isa::Target::Kind::Op1, 4};

    // Decoder view: the anomalous targets contribute zero messages.
    auto d = sim::decodeBlock(prog.block(0));
    ASSERT_TRUE(d.usable);
    u64 msgs = 0;
    for (u16 i = 0; i < d.n; ++i) {
        const auto cls = static_cast<isa::OpClass>(d.insts[i].cls);
        if (cls == isa::OpClass::Store || cls == isa::OpClass::Branch) {
            EXPECT_EQ(d.insts[i].opMsgs, 0u);
        }
        msgs += d.insts[i].opMsgs;
    }
    EXPECT_EQ(msgs, 3u);  // the three GENS deliveries only

    // End to end: ISA stats (operandMessages included) stay
    // byte-identical across engines.
    std::vector<u8> stats[2];
    int e = 0;
    for (auto eng :
         {sim::FuncEngine::Legacy, sim::FuncEngine::Predecoded}) {
        MemImage mem;
        sim::FuncSim fsim(prog, mem, eng);
        stats[e++] = isaBytes(fsim.run().stats);
    }
    EXPECT_EQ(stats[0], stats[1]) << "ISA stats diverge across engines";
}

// ---------------------------------------------------------------------
// Decoded-block cache accounting.
// ---------------------------------------------------------------------

TEST(PredecodeUnit, CacheAccounting)
{
    wir::Module mod;
    workloads::find("autocor").build(mod);
    auto prog =
        compiler::compileToTrips(mod, compiler::Options::compiled());

    MemImage mem;
    wir::Interp::loadGlobals(mod, mem);
    sim::FuncSim fast(prog, mem, sim::FuncEngine::Predecoded);
    fast.run();
    // Lazy decode: only executed blocks are decoded, each at most once.
    EXPECT_GT(fast.decodedBlocks(), 0u);
    EXPECT_LE(fast.decodedBlocks(), prog.numBlocks());
    EXPECT_GT(fast.decodedBytes(), 0u);
    EXPECT_LE(fast.decodedFallbacks(), fast.decodedBlocks());
    // Compiler-produced blocks all have static schedules today; a
    // regression that starts rejecting them would silently fall back
    // to legacy speed, so pin it.
    EXPECT_EQ(fast.decodedFallbacks(), 0u);

    MemImage lmem;
    wir::Interp::loadGlobals(mod, lmem);
    sim::FuncSim legacy(prog, lmem, sim::FuncEngine::Legacy);
    legacy.run();
    EXPECT_EQ(legacy.engine(), sim::FuncEngine::Legacy);
    EXPECT_EQ(legacy.decodedBlocks(), 0u);
    EXPECT_EQ(legacy.decodedBytes(), 0u);
    EXPECT_EQ(legacy.decodedFallbacks(), 0u);
}

} // namespace
