/** Table 2: benchmark suites. */
#include "bench_util.hh"
using namespace trips;
int main() {
    bench::header("Table 2: Benchmark suites",
                  "kernels, VersaBench, EEMBC, Simple, SPEC 2000");
    TextTable t;
    t.header({"Suite", "Count", "Members"});
    for (const char *s : {"kernel", "versa", "eembc", "specint", "specfp"}) {
        auto ws = workloads::suite(s);
        std::string names;
        for (auto *w : ws)
            names += w->name + " ";
        t.row({s, TextTable::fmtInt(ws.size()), names});
    }
    auto simple = workloads::simpleSuite();
    std::string names;
    for (auto *w : simple)
        names += w->name + " ";
    t.row({"simple(hand)", TextTable::fmtInt(simple.size()), names});
    t.print(std::cout);
    std::cout << "\nSPEC proxies: see DESIGN.md section 4 for the proxy "
                 "-> original mapping.\n";
    return 0;
}
