/** Fig. 8 (table): achieved L1 / L2 / memory bandwidth from streaming
 *  vadd sweeps sized to each level of the hierarchy. */
#include "bench_util.hh"
#include "wir/builder.hh"
using namespace trips;

namespace {

/** Streaming copy-add over arrays of n doubles, it iterations. */
workloads::Workload
streamWorkload(const std::string &name, size_t n, unsigned iters)
{
    workloads::Workload w;
    w.name = name;
    w.suite = "stream";
    w.build = [n, iters](wir::Module &m) {
        Addr a = m.addGlobal("sa", n * 8);
        Addr b = m.addGlobal("sb", n * 8);
        wir::FunctionBuilder fb(m, "main", 0);
        auto pa = fb.iconst(static_cast<i64>(a));
        auto pb = fb.iconst(static_cast<i64>(b));
        auto it = fb.iconst(0);
        fb.label("it");
        auto i = fb.iconst(0);
        fb.label("loop");
        auto off = fb.shli(i, 3);
        fb.store(fb.add(pb, off), fb.load(fb.add(pa, off), 0), 0);
        fb.assign(i, fb.addi(i, 1));
        fb.br(fb.cmpLt(i, fb.iconst(static_cast<i64>(n))), "loop", "nx");
        fb.label("nx");
        fb.assign(it, fb.addi(it, 1));
        fb.br(fb.cmpLt(it, fb.iconst(iters)), "it", "done");
        fb.label("done");
        fb.ret(fb.ftoi(fb.load(pb, 0)));
        fb.finish();
    };
    return w;
}

double
gib(double bytes_per_cycle)
{
    return bytes_per_cycle * 366e6 / (1024.0 * 1024.0 * 1024.0);
}

} // namespace

int main() {
    bench::header("Figure 8 (table): memory-system bandwidths at 366MHz",
                  "L1 peak 10.9 GB/s (96.5% achieved); L2 17.5 GB/s "
                  "(98.5%); DRAM 5.6 GB/s (57.8%, controller protocol)");
    TextTable t;
    t.header({"level", "arrays", "bytesMoved", "cycles", "GB/s",
              "paperPeak", "paperAchieved"});

    // L1-resident: 2 x 8KB arrays fit the 32KB L1D.
    {
        auto w = streamWorkload("l1stream", 1024, 24);
        auto r = bench::runTrips(w, compiler::Options::hand(), true);
        t.row({"L1D <-> core", "2x8KB",
               TextTable::fmtInt(r.uarch.bytesL1),
               TextTable::fmtInt(r.uarch.cycles),
               TextTable::fmt(gib(static_cast<double>(r.uarch.bytesL1) /
                                  r.uarch.cycles), 2),
               "10.9", "10.5"});
    }
    // L2-resident: 2 x 256KB arrays exceed L1, fit the 1MB L2.
    {
        auto w = streamWorkload("l2stream", 32768, 3);
        auto r = bench::runTrips(w, compiler::Options::hand(), true);
        t.row({"L2 -> L1", "2x256KB",
               TextTable::fmtInt(r.uarch.bytesL2),
               TextTable::fmtInt(r.uarch.cycles),
               TextTable::fmt(gib(static_cast<double>(r.uarch.bytesL2) /
                                  r.uarch.cycles), 2),
               "17.5", "17.2"});
    }
    // Memory-bound: 2 x 1.5MB arrays exceed the 1MB L2.
    {
        auto w = streamWorkload("memstream", 192 * 1024, 1);
        auto r = bench::runTrips(w, compiler::Options::hand(), true);
        t.row({"DRAM -> L2", "2x1.5MB",
               TextTable::fmtInt(r.uarch.bytesMem),
               TextTable::fmtInt(r.uarch.cycles),
               TextTable::fmt(gib(static_cast<double>(r.uarch.bytesMem) /
                                  r.uarch.cycles), 2),
               "5.6", "3.2"});
    }
    t.print(std::cout);
    std::cout << "\nShape check: bandwidth falls by level; DRAM achieves "
                 "well under peak due to row/controller overhead.\n";
    return 0;
}
