#!/usr/bin/env bash
# Run the simulator-speed microbenchmarks and (re)generate
# BENCH_simspeed.json at the repository root.
#
# Usage: bench/run_simspeed.sh [build-dir] [extra google-benchmark args]
# Example: bench/run_simspeed.sh build --benchmark_repetitions=3
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

bench_bin="$build_dir/bench_simspeed"
if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not found; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

raw_json="$(mktemp)"
trap 'rm -f "$raw_json"' EXIT

"$bench_bin" \
    --benchmark_out="$raw_json" \
    --benchmark_out_format=json \
    "$@"

python3 - "$raw_json" "$repo_root/BENCH_simspeed.json" <<'EOF'
import json, os, sys

raw = json.load(open(sys.argv[1]))
out = {
    "description": "tripsim simulator-speed microbenchmarks "
                   "(bench/bench_simspeed.cc); regenerate with "
                   "bench/run_simspeed.sh",
    "context": raw.get("context", {}),
    "benchmarks": [
        {k: b[k] for k in
         ("name", "iterations", "real_time", "cpu_time", "time_unit")
         if k in b}
        for b in raw.get("benchmarks", [])
    ],
}
# Historical annotations (recorded baselines of past optimization PRs)
# and the sweep-engine section (written by bench/run_sweep.sh) survive
# regeneration.
if os.path.exists(sys.argv[2]):
    try:
        prev = json.load(open(sys.argv[2]))
        for key in ("baselines", "sweep"):
            if key in prev:
                out[key] = prev[key]
    except (ValueError, OSError):
        pass
json.dump(out, open(sys.argv[2], "w"), indent=2)
print("wrote", sys.argv[2])
EOF
