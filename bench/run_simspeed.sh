#!/usr/bin/env bash
# Run the simulator-speed microbenchmarks and (re)generate
# BENCH_simspeed.json at the repository root.
#
# The numbers are only meaningful from an optimized build, so this
# script configures/builds the build directory itself as Release and
# refuses to record anything else: the recorded context's
# `library_build_type` is the build type of the *tripsim library* (the
# code being measured) taken from CMakeCache.txt, and the run aborts
# if it is debug. The harness's own build type (the JSON context's
# original `library_build_type`, preserved under
# `benchmark_harness_build_type`) must also be release: a debug
# harness inflates the measured loop overhead around the library
# calls. The default bundled minibench harness (bench/minibench/,
# TRIPSIM_BUNDLED_BENCH_HARNESS=ON) compiles with the library's flags
# so this holds automatically; distro libbenchmark packages ship
# without NDEBUG and are rejected here.
#
# Usage: bench/run_simspeed.sh [build-dir] [extra google-benchmark args]
# Example: bench/run_simspeed.sh build --benchmark_repetitions=3
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true

if [[ ! -f "$build_dir/CMakeCache.txt" ]]; then
    cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
fi

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
                  "$build_dir/CMakeCache.txt")"
case "$build_type" in
    Release|RelWithDebInfo) ;;
    *)
        echo "error: $build_dir is configured as" \
             "'${build_type:-<unset>}', not Release; benchmark numbers" \
             "from an unoptimized tripsim library are meaningless." >&2
        echo "  cmake -B $build_dir -S $repo_root" \
             "-DCMAKE_BUILD_TYPE=Release" >&2
        exit 1
        ;;
esac

cmake --build "$build_dir" --target bench_simspeed -j

bench_bin="$build_dir/bench_simspeed"
raw_json="$(mktemp)"
trap 'rm -f "$raw_json"' EXIT

"$bench_bin" \
    --benchmark_out="$raw_json" \
    --benchmark_out_format=json \
    "$@"

TRIPSIM_BUILD_TYPE="$build_type" \
python3 - "$raw_json" "$repo_root/BENCH_simspeed.json" <<'EOF'
import json, os, sys

raw = json.load(open(sys.argv[1]))
build_type = os.environ["TRIPSIM_BUILD_TYPE"].lower()
if build_type not in ("release", "relwithdebinfo"):
    sys.exit("refusing to record: tripsim library_build_type is '%s'"
             % build_type)
context = raw.get("context", {})
# library_build_type describes the measured library (tripsim); the
# harness package's own build type is kept under a distinct key.
context["benchmark_harness_build_type"] = \
    context.get("library_build_type", "unknown")
context["library_build_type"] = build_type
if context["benchmark_harness_build_type"] != "release":
    sys.exit("refusing to record: benchmark harness built as '%s', not"
             " release; rebuild with TRIPSIM_BUNDLED_BENCH_HARNESS=ON"
             " (default) or a release google-benchmark"
             % context["benchmark_harness_build_type"])
out = {
    "description": "tripsim simulator-speed microbenchmarks "
                   "(bench/bench_simspeed.cc); regenerate with "
                   "bench/run_simspeed.sh",
    "context": context,
    "benchmarks": [
        {k: b[k] for k in
         ("name", "iterations", "real_time", "cpu_time", "time_unit")
         if k in b}
        for b in raw.get("benchmarks", [])
    ],
}
# Historical annotations (recorded baselines of past optimization PRs)
# and the sweep-engine section (written by bench/run_sweep.sh) survive
# regeneration.
if os.path.exists(sys.argv[2]):
    try:
        prev = json.load(open(sys.argv[2]))
        for key in ("baselines", "sweep"):
            if key in prev:
                out[key] = prev[key]
    except (ValueError, OSError):
        pass
json.dump(out, open(sys.argv[2], "w"), indent=2)
print("wrote", sys.argv[2])
EOF
