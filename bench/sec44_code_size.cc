/** Section 4.4: dynamic code size vs the RISC baseline. */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Section 4.4: code size",
                  "TRIPS ~6x PowerPC uncompressed, ~4x with 32/64/96/128 "
                  "compression classes");
    TextTable t;
    t.header({"bench", "riscB", "tripsB(comp)", "tripsB(full)",
              "comp/risc", "full/risc"});
    std::vector<double> comp, full;
    for (const auto &w : workloads::all()) {
        wir::Module mod;
        w.build(mod);
        auto tp = compiler::compileToTrips(mod,
                                           compiler::Options::compiled());
        auto rp = risc::compileToRisc(mod);
        u64 compressed = tp.codeBytes();
        u64 uncompressed = 0;
        for (u32 b = 0; b < tp.numBlocks(); ++b)
            uncompressed += 128 + 4 * isa::MAX_INSTS;
        double rb = static_cast<double>(rp.codeBytes());
        t.row({w.name, TextTable::fmtInt(rp.codeBytes()),
               TextTable::fmtInt(compressed),
               TextTable::fmtInt(uncompressed),
               TextTable::fmt(compressed / rb, 2),
               TextTable::fmt(uncompressed / rb, 2)});
        comp.push_back(compressed / rb);
        full.push_back(uncompressed / rb);
    }
    t.print(std::cout);
    std::cout << "\nGeomean expansion: compressed "
              << TextTable::fmt(geomean(comp), 2) << "x (paper ~4x), full "
              << TextTable::fmt(geomean(full), 2) << "x (paper ~6x)\n";
    return 0;
}
