/** Fig. 10: IPC of idealized EDGE machines vs the hardware model. */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Figure 10: ideal EDGE machine limit study",
                  "ideal/1K window ~2.5x hardware; zero dispatch cost "
                  "~5x more; 128K window exposes 50-1000 IPC");
    TextTable t;
    t.header({"bench", "hw IPC", "ideal 1K/8cy", "ideal 1K/0cy",
              "ideal 128K/0cy"});
    ideal::IdealConfig base;            // 1K window, 8-cycle dispatch
    ideal::IdealConfig nodispatch;
    nodispatch.dispatchCost = 0;
    ideal::IdealConfig huge;
    huge.dispatchCost = 0;
    huge.windowInsts = 128 * 1024;
    std::vector<double> hw_all, base_all;
    auto opts = compiler::Options::compiled();
    auto run_one = [&](const workloads::Workload *w) {
        auto hw = bench::runTrips(*w, opts, true);
        auto i1 = core::runIdeal(*w, opts, base);
        auto i2 = core::runIdeal(*w, opts, nodispatch);
        auto i3 = core::runIdeal(*w, opts, huge);
        t.row({w->name, TextTable::fmt(hw.uarch.ipc(), 2),
               TextTable::fmt(i1.ipc(), 1), TextTable::fmt(i2.ipc(), 1),
               TextTable::fmt(i3.ipc(), 1)});
        hw_all.push_back(hw.uarch.ipc());
        base_all.push_back(i1.ipc());
    };
    for (auto *w : bench::figureOrderSimple())
        run_one(w);
    t.rule();
    for (const char *s : {"specint", "specfp"})
        for (auto *w : workloads::suite(s))
            run_one(w);
    t.print(std::cout);
    std::cout << "\nMean ideal(1K,8cy)/hardware ratio: "
              << TextTable::fmt(amean(base_all) / amean(hw_all), 2)
              << " (paper ~2.5x)\n";
    return 0;
}
