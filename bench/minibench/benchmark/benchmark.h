/**
 * @file
 * Minimal header-only google-benchmark-compatible harness.
 *
 * Why this exists: the simulator-speed numbers recorded in
 * BENCH_simspeed.json are only meaningful from an optimized harness,
 * but the distro's libbenchmark package ships without NDEBUG and
 * stamps `"library_build_type": "debug"` into every JSON context it
 * emits — and the CI image is offline, so the FetchContent fallback to
 * a release-built upstream can never fire there. Bundling the small
 * subset of the API the repository actually uses makes the harness
 * build with the same flags as the measured library, so the recorded
 * context is honestly "release" and run_simspeed.sh can refuse debug
 * harnesses outright.
 *
 * Implemented surface (source-compatible with google-benchmark):
 *
 *   - `void BM_x(benchmark::State &)` functions iterated with
 *     `for (auto _ : state)`, auto-scaled until the measured run is
 *     long enough to trust (--benchmark_min_time, default 0.5s);
 *   - BENCHMARK(BM_x)->Unit(benchmark::kMillisecond);
 *   - benchmark::DoNotOptimize / ClobberMemory;
 *   - BENCHMARK_MAIN();
 *   - flags: --benchmark_filter=REGEX, --benchmark_repetitions=N,
 *     --benchmark_out=FILE, --benchmark_out_format=json,
 *     --benchmark_min_time=SECS[s];
 *   - console table plus google-benchmark-shaped JSON: a `context`
 *     object (date, host_name, executable, num_cpus, load_avg,
 *     library_build_type from this translation unit's NDEBUG) and a
 *     `benchmarks` array with per-repetition entries and, when
 *     repetitions > 1, _mean/_median/_stddev/_cv aggregates.
 *
 * Not implemented (unused here): ranges/args, fixtures, threads,
 * counters, manual timing, custom reporters.
 */

#ifndef TRIPSIM_MINIBENCH_BENCHMARK_H
#define TRIPSIM_MINIBENCH_BENCHMARK_H

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <regex>
#include <string>
#include <thread>
#include <vector>

namespace benchmark {

enum TimeUnit { kNanosecond, kMicrosecond, kMillisecond, kSecond };

// ---------------------------------------------------------------------
// Optimization barriers.
// ---------------------------------------------------------------------

template <class T>
inline void
DoNotOptimize(T const &value)
{
    asm volatile("" : : "r,m"(value) : "memory");
}

template <class T>
inline void
DoNotOptimize(T &value)
{
    asm volatile("" : "+r,m"(value) : : "memory");
}

inline void
ClobberMemory()
{
    asm volatile("" : : : "memory");
}

// ---------------------------------------------------------------------
// State: the per-run iteration controller. The runner decides the
// iteration count; the benchmark body just loops `for (auto _ : state)`.
// ---------------------------------------------------------------------

class State
{
  public:
    explicit State(int64_t iters) : max_iterations(iters) {}

    // Non-trivial destructor so `for (auto _ : state)` does not trip
    // -Wunused-but-set-variable on the loop variable.
    struct Empty
    {
        ~Empty() {}
    };

    struct iterator
    {
        int64_t remaining;
        Empty operator*() const { return Empty{}; }
        iterator &operator++()
        {
            --remaining;
            return *this;
        }
        bool operator!=(const iterator &) const { return remaining != 0; }
    };

    iterator begin() { return iterator{max_iterations}; }
    iterator end() { return iterator{0}; }

    int64_t iterations() const { return max_iterations; }

    const int64_t max_iterations;
};

// ---------------------------------------------------------------------
// Registration.
// ---------------------------------------------------------------------

namespace internal {

using Function = void (*)(State &);

class Benchmark
{
  public:
    Benchmark(const char *name, Function fn) : name_(name), fn_(fn) {}

    Benchmark *Unit(TimeUnit u)
    {
        unit_ = u;
        return this;
    }

    const std::string &name() const { return name_; }
    Function fn() const { return fn_; }
    TimeUnit unit() const { return unit_; }

  private:
    std::string name_;
    Function fn_;
    TimeUnit unit_ = kNanosecond;
};

inline std::vector<Benchmark *> &
registry()
{
    static std::vector<Benchmark *> r;
    return r;
}

inline Benchmark *
RegisterBenchmarkInternal(Benchmark *b)
{
    registry().push_back(b);
    return b;
}

// Runtime flags (set by Initialize).
struct Flags
{
    std::string filter;
    std::string outFile;
    std::string outFormat = "json";
    unsigned repetitions = 1;
    double minTimeSecs = 0.5;
};

inline Flags &
flags()
{
    static Flags f;
    return f;
}

inline std::string &
executableName()
{
    static std::string n = "bench";
    return n;
}

// ---------------------------------------------------------------------
// Clocks.
// ---------------------------------------------------------------------

inline double
nowRealSecs()
{
    timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

inline double
nowCpuSecs()
{
    timespec ts;
    clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
}

// ---------------------------------------------------------------------
// Measurement.
// ---------------------------------------------------------------------

struct RunResult
{
    std::string name;
    std::string runName;       ///< benchmark name without aggregate tag
    std::string runType;       ///< "iteration" or "aggregate"
    std::string aggregateName; ///< "", "mean", "median", "stddev", "cv"
    unsigned repetitions = 1;
    unsigned repetitionIndex = 0;
    int64_t iterations = 0;
    double realTime = 0; ///< per-iteration, in timeUnit
    double cpuTime = 0;  ///< per-iteration, in timeUnit
    const char *timeUnit = "ns";
};

inline const char *
unitName(TimeUnit u)
{
    switch (u) {
      case kNanosecond: return "ns";
      case kMicrosecond: return "us";
      case kMillisecond: return "ms";
      case kSecond: return "s";
    }
    return "ns";
}

inline double
unitScale(TimeUnit u) // seconds -> unit
{
    switch (u) {
      case kNanosecond: return 1e9;
      case kMicrosecond: return 1e6;
      case kMillisecond: return 1e3;
      case kSecond: return 1.0;
    }
    return 1e9;
}

/** One timed pass of `iters` iterations; returns (real, cpu) seconds. */
inline void
timedRun(Benchmark *b, int64_t iters, double &realSecs, double &cpuSecs)
{
    State st(iters);
    double r0 = nowRealSecs(), c0 = nowCpuSecs();
    b->fn()(st);
    realSecs = nowRealSecs() - r0;
    cpuSecs = nowCpuSecs() - c0;
}

/** Pick an iteration count whose run lasts at least minTimeSecs. */
inline int64_t
calibrate(Benchmark *b, double minTimeSecs)
{
    int64_t iters = 1;
    for (;;) {
        double real, cpu;
        timedRun(b, iters, real, cpu);
        if (real >= minTimeSecs || iters >= (int64_t(1) << 40))
            return iters;
        // Same growth policy as google-benchmark: aim 40% past the
        // target, never more than 10x or less than 2x per step.
        double mult = real > 1e-9 ? 1.4 * minTimeSecs / real : 10.0;
        mult = std::min(10.0, std::max(2.0, mult));
        iters = static_cast<int64_t>(static_cast<double>(iters) * mult) + 1;
    }
}

inline RunResult
runOne(Benchmark *b, int64_t iters, unsigned reps, unsigned repIdx)
{
    double real, cpu;
    timedRun(b, iters, real, cpu);
    RunResult r;
    r.name = b->name();
    r.runName = b->name();
    r.runType = "iteration";
    r.repetitions = reps;
    r.repetitionIndex = repIdx;
    r.iterations = iters;
    double scale = unitScale(b->unit()) / static_cast<double>(iters);
    r.realTime = real * scale;
    r.cpuTime = cpu * scale;
    r.timeUnit = unitName(b->unit());
    return r;
}

inline double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    size_t n = v.size();
    return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

inline double
mean(const std::vector<double> &v)
{
    double s = 0;
    for (double x : v)
        s += x;
    return v.empty() ? 0 : s / static_cast<double>(v.size());
}

inline double
stddev(const std::vector<double> &v)
{
    if (v.size() < 2)
        return 0;
    double m = mean(v), s = 0;
    for (double x : v)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(v.size() - 1));
}

/** Append google-benchmark's _mean/_median/_stddev/_cv aggregates. */
inline void
appendAggregates(std::vector<RunResult> &out,
                 const std::vector<RunResult> &reps)
{
    if (reps.size() < 2)
        return;
    std::vector<double> real, cpu;
    for (const auto &r : reps) {
        real.push_back(r.realTime);
        cpu.push_back(r.cpuTime);
    }
    auto agg = [&](const char *tag, double rv, double cv,
                   const char *unit) {
        RunResult a;
        a.name = reps[0].runName + "_" + tag;
        a.runName = reps[0].runName;
        a.runType = "aggregate";
        a.aggregateName = tag;
        a.repetitions = reps[0].repetitions;
        a.iterations = static_cast<int64_t>(reps.size());
        a.realTime = rv;
        a.cpuTime = cv;
        a.timeUnit = unit;
        out.push_back(a);
    };
    const char *u = reps[0].timeUnit;
    agg("mean", mean(real), mean(cpu), u);
    agg("median", median(real), median(cpu), u);
    agg("stddev", stddev(real), stddev(cpu), u);
    double mr = mean(real), mc = mean(cpu);
    agg("cv", mr > 0 ? stddev(real) / mr : 0, mc > 0 ? stddev(cpu) / mc : 0,
        "");
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

inline void
writeJson(std::ostream &os, const std::vector<RunResult> &results)
{
    char date[64] = "unknown";
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    if (localtime_r(&t, &tm))
        std::strftime(date, sizeof date, "%Y-%m-%dT%H:%M:%S%z", &tm);
    char host[256] = "unknown";
    gethostname(host, sizeof host - 1);
    double load[3] = {0, 0, 0};
    getloadavg(load, 3);

    os << "{\n  \"context\": {\n"
       << "    \"date\": \"" << date << "\",\n"
       << "    \"host_name\": \"" << jsonEscape(host) << "\",\n"
       << "    \"executable\": \"" << jsonEscape(executableName())
       << "\",\n"
       << "    \"num_cpus\": " << std::thread::hardware_concurrency()
       << ",\n"
       << "    \"load_avg\": [" << load[0] << "," << load[1] << ","
       << load[2] << "],\n"
       << "    \"harness\": \"tripsim-minibench\",\n"
#ifdef NDEBUG
       << "    \"library_build_type\": \"release\"\n"
#else
       << "    \"library_build_type\": \"debug\"\n"
#endif
       << "  },\n  \"benchmarks\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << "    {\n"
           << "      \"name\": \"" << jsonEscape(r.name) << "\",\n"
           << "      \"run_name\": \"" << jsonEscape(r.runName)
           << "\",\n"
           << "      \"run_type\": \"" << r.runType << "\",\n";
        if (!r.aggregateName.empty())
            os << "      \"aggregate_name\": \"" << r.aggregateName
               << "\",\n";
        os << "      \"repetitions\": " << r.repetitions << ",\n"
           << "      \"repetition_index\": " << r.repetitionIndex
           << ",\n"
           << "      \"iterations\": " << r.iterations << ",\n"
           << "      \"real_time\": " << r.realTime << ",\n"
           << "      \"cpu_time\": " << r.cpuTime << ",\n"
           << "      \"time_unit\": \"" << r.timeUnit << "\"\n"
           << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

inline void
printConsole(const std::vector<RunResult> &results)
{
    std::printf("%s\n", std::string(66, '-').c_str());
    std::printf("%-32s %13s %13s %10s\n", "Benchmark", "Time", "CPU",
                "Iterations");
    std::printf("%s\n", std::string(66, '-').c_str());
    for (const auto &r : results) {
        std::printf("%-32s %10.3f %s %10.3f %s %10lld\n", r.name.c_str(),
                    r.realTime, r.timeUnit, r.cpuTime, r.timeUnit,
                    static_cast<long long>(r.iterations));
    }
}

} // namespace internal

// ---------------------------------------------------------------------
// Entry points (the BENCHMARK_MAIN surface).
// ---------------------------------------------------------------------

inline void
Initialize(int *argc, char **argv)
{
    auto &f = internal::flags();
    if (*argc > 0)
        internal::executableName() = argv[0];
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
        std::string a = argv[i];
        auto starts = [&](const char *p) {
            return a.rfind(p, 0) == 0;
        };
        if (starts("--benchmark_filter=")) {
            f.filter = a.substr(std::strlen("--benchmark_filter="));
        } else if (starts("--benchmark_out_format=")) {
            f.outFormat =
                a.substr(std::strlen("--benchmark_out_format="));
        } else if (starts("--benchmark_out=")) {
            f.outFile = a.substr(std::strlen("--benchmark_out="));
        } else if (starts("--benchmark_repetitions=")) {
            f.repetitions = static_cast<unsigned>(std::strtoul(
                a.c_str() + std::strlen("--benchmark_repetitions="),
                nullptr, 10));
            if (f.repetitions == 0)
                f.repetitions = 1;
        } else if (starts("--benchmark_min_time=")) {
            // Accepts "0.5" and google-benchmark 1.8's "0.5s".
            f.minTimeSecs = std::strtod(
                a.c_str() + std::strlen("--benchmark_min_time="),
                nullptr);
            if (f.minTimeSecs <= 0)
                f.minTimeSecs = 0.5;
        } else if (starts("--benchmark_")) {
            std::fprintf(stderr, "minibench: ignoring %s\n", a.c_str());
        } else {
            argv[out++] = argv[i]; // leave for the caller
            continue;
        }
    }
    *argc = out;
}

inline bool
ReportUnrecognizedArguments(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        std::fprintf(stderr, "minibench: unrecognized argument %s\n",
                     argv[i]);
    return argc > 1;
}

inline size_t
RunSpecifiedBenchmarks()
{
    const auto &f = internal::flags();
    std::regex filter(f.filter.empty() ? std::string(".*") : f.filter);
    std::vector<internal::RunResult> results;
    size_t ran = 0;
    for (auto *b : internal::registry()) {
        if (!std::regex_search(b->name(), filter))
            continue;
        ++ran;
        int64_t iters = internal::calibrate(b, f.minTimeSecs);
        std::vector<internal::RunResult> reps;
        for (unsigned r = 0; r < f.repetitions; ++r)
            reps.push_back(
                internal::runOne(b, iters, f.repetitions, r));
        for (const auto &r : reps)
            results.push_back(r);
        internal::appendAggregates(results, reps);
    }
    internal::printConsole(results);
    if (!f.outFile.empty()) {
        if (f.outFormat != "json") {
            std::fprintf(stderr,
                         "minibench: only json output is supported "
                         "(got %s)\n",
                         f.outFormat.c_str());
            std::exit(1);
        }
        std::ofstream os(f.outFile);
        if (!os) {
            std::fprintf(stderr, "minibench: cannot write %s\n",
                         f.outFile.c_str());
            std::exit(1);
        }
        internal::writeJson(os, results);
    }
    return ran;
}

inline void
Shutdown()
{
}

} // namespace benchmark

#define BENCHMARK(fn)                                                    \
    static ::benchmark::internal::Benchmark *benchmark_reg_##fn          \
        [[maybe_unused]] = ::benchmark::internal::RegisterBenchmarkInternal( \
            new ::benchmark::internal::Benchmark(#fn, fn))

#define BENCHMARK_MAIN()                                                 \
    int main(int argc, char **argv)                                      \
    {                                                                    \
        ::benchmark::Initialize(&argc, argv);                            \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))        \
            return 1;                                                    \
        ::benchmark::RunSpecifiedBenchmarks();                           \
        ::benchmark::Shutdown();                                         \
        return 0;                                                        \
    }

#endif // TRIPSIM_MINIBENCH_BENCHMARK_H
