/** Fig. 8 (right): OPN traffic profile per class, with hop counts. */
#include "bench_util.hh"
using namespace trips;

static void profile(const std::string &name, const core::TripsRun &r) {
    static const char *cls[] = {"ET-ET", "ET-DT", "ET-RT", "ET-GT",
                                "DT-RT", "DT-ET", "RT-ET", "other"};
    constexpr unsigned NC =
        static_cast<unsigned>(net::OpnClass::NUM_CLASSES);
    static_assert(sizeof(cls) / sizeof(cls[0]) == NC);
    std::cout << "--- " << name << " ---\n";
    double total = 0, weighted = 0;
    for (unsigned c = 0; c < NC; ++c)
        total += r.uarch.opnHops[c].samples();
    TextTable t;
    t.header({"class", "share", "0h", "1h", "2h", "3h", "4h", "5h+",
              "avg"});
    for (unsigned c = 0; c < NC - 1; ++c) {
        const auto &d = r.uarch.opnHops[c];
        if (!d.samples())
            continue;
        std::vector<std::string> row = {
            cls[c], TextTable::pct(d.samples() / std::max(1.0, total))};
        for (unsigned h = 0; h < 5; ++h)
            row.push_back(TextTable::pct(d.fraction(h)));
        double tail = 0;
        for (unsigned h = 5; h < d.numBuckets(); ++h)
            tail += d.fraction(h);
        row.push_back(TextTable::pct(tail));
        row.push_back(TextTable::fmt(d.mean(), 2));
        t.row(row);
        weighted += d.mean() * d.samples();
    }
    t.print(std::cout);
    std::cout << "avg hops/packet: "
              << TextTable::fmt(total ? weighted / total : 0, 2)
              << "  (local bypasses counted as 0 hops)\n\n";
}

int main() {
    bench::header("Figure 8 (graph): OPN hop profile",
                  "ET-ET dominates; ~half of operands bypass locally; "
                  "avg ~0.9-1.9 hops (vadd 1.86, matrix 1.12)");
    // EEMBC mean: aggregate a representative member.
    profile("eembc (a2time)",
            bench::runTrips(workloads::find("a2time"),
                           compiler::Options::compiled(), true));
    profile("spec-gcc proxy",
            bench::runTrips(workloads::find("gcc"),
                           compiler::Options::compiled(), true));
    profile("vadd-hand",
            bench::runTrips(workloads::find("vadd"),
                           compiler::Options::hand(), true));
    profile("matrix-hand",
            bench::runTrips(workloads::find("matrix"),
                           compiler::Options::hand(), true));
    return 0;
}
