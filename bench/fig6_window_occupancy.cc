/** Fig. 6: average number of instructions in the 1K-entry window. */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Figure 6: instructions in flight",
                  "compiled mean ~450 total (200 useful); hand ~630 "
                  "(380+ useful); SPEC lower than simple benchmarks");
    TextTable t;
    t.header({"bench", "avgBlocks", "avgInsts", "peak", "usefulInFlight"});
    auto emit = [&](const std::string &n, const core::TripsRun &r) {
        double useful_frac = r.isa.fetched
            ? static_cast<double>(r.isa.useful) / r.isa.fetched : 0;
        t.row({n, TextTable::fmt(r.uarch.avgBlocksInFlight, 2),
               TextTable::fmt(r.uarch.avgInstsInFlight, 0),
               TextTable::fmtInt(r.uarch.peakInstsInFlight),
               TextTable::fmt(r.uarch.avgInstsInFlight * useful_frac, 0)});
    };
    std::vector<double> totals_c, totals_h;
    for (auto *w : bench::figureOrderSimple()) {
        auto c = bench::runTrips(*w, compiler::Options::compiled(), true);
        emit(w->name + " C", c);
        totals_c.push_back(c.uarch.avgInstsInFlight);
        auto h = bench::runTrips(*w, compiler::Options::hand(), true);
        emit(w->name + " H", h);
        totals_h.push_back(h.uarch.avgInstsInFlight);
    }
    t.rule();
    for (const char *s : {"specint", "specfp"}) {
        std::vector<double> tt;
        for (auto *w : workloads::suite(s)) {
            auto c = bench::runTrips(*w, compiler::Options::compiled(),
                                    true);
            emit(std::string(w->name), c);
            tt.push_back(c.uarch.avgInstsInFlight);
        }
        t.row({std::string(s) + " mean", "-", TextTable::fmt(amean(tt), 0),
               "-", "-"});
    }
    t.print(std::cout);
    std::cout << "\nSimple-suite mean in-flight: C="
              << TextTable::fmt(amean(totals_c), 0)
              << " H=" << TextTable::fmt(amean(totals_h), 0)
              << " of 1024 (paper: 450 / 630)\n";
    return 0;
}
