/**
 * @file
 * Equivalence harness for simulator refactors: runs the cycle-level
 * model on a fixed set of workloads and prints every UarchResult field
 * in a stable text format. Capture the output before a performance
 * change, diff it after — any timing-semantics drift shows up as a
 * textual difference (see README "simulator performance").
 *
 * --all widens the sweep to every registered workload (compiled
 * preset; hand preset too for the Simple suite) plus the reduced
 * uarch presets on a fixed subset — the coverage the "bit-identical
 * single-core timing" acceptance check diffs across refactors.
 *
 * --cache DIR (or $TRIPSIM_CACHE) routes every run through the
 * campaign cache (sim/campaign.hh): a warm re-run performs zero
 * simulation and must print byte-identical stats — the CI campaign
 * stage diffs exactly that. Cache hit/miss counts go to stderr so
 * stdout stays diffable.
 */
#include <cstdio>
#include <cstring>

#include "core/machines.hh"
#include "sim/campaign.hh"

using namespace trips;

static void
dumpDist(const char *name, const Distribution &d)
{
    std::printf("  %s: samples=%llu mean=%.9f buckets=[",
                name, static_cast<unsigned long long>(d.samples()),
                d.mean());
    for (unsigned b = 0; b < d.numBuckets(); ++b)
        std::printf("%s%llu", b ? "," : "",
                    static_cast<unsigned long long>(d.count(b)));
    std::printf("]\n");
}

static void
dump(const char *name, const char *preset, const uarch::UarchResult &r)
{
    std::printf("=== %s (%s) ===\n", name, preset);
    std::printf("  retVal=%lld fuel=%d\n",
                static_cast<long long>(r.retVal), r.fuelExhausted);
    std::printf("  cycles=%llu committed=%llu flushed=%llu "
                "fetched=%llu fired=%llu\n",
                (unsigned long long)r.cycles,
                (unsigned long long)r.blocksCommitted,
                (unsigned long long)r.blocksFlushed,
                (unsigned long long)r.instsFetched,
                (unsigned long long)r.instsFired);
    std::printf("  brMiss=%llu crMiss=%llu violFlush=%llu icMiss=%llu\n",
                (unsigned long long)r.branchMispredicts,
                (unsigned long long)r.callRetMispredicts,
                (unsigned long long)r.loadViolationFlushes,
                (unsigned long long)r.icacheMissStalls);
    std::printf("  l1d=%llu/%llu l2=%llu/%llu loads=%llu stores=%llu\n",
                (unsigned long long)r.l1dHits,
                (unsigned long long)r.l1dMisses,
                (unsigned long long)r.l2Hits,
                (unsigned long long)r.l2Misses,
                (unsigned long long)r.loadsExecuted,
                (unsigned long long)r.storesCommitted);
    std::printf("  l1i=%llu/%llu l1dWb=%llu l2Wb=%llu\n",
                (unsigned long long)r.l1iHits,
                (unsigned long long)r.l1iMisses,
                (unsigned long long)r.l1dWritebacks,
                (unsigned long long)r.l2Writebacks);
    std::printf("  bytesL1=%llu bytesL2=%llu bytesMem=%llu\n",
                (unsigned long long)r.bytesL1,
                (unsigned long long)r.bytesL2,
                (unsigned long long)r.bytesMem);
    std::printf("  avgBlocks=%.9f avgInsts=%.9f peakInsts=%llu\n",
                r.avgBlocksInFlight, r.avgInstsInFlight,
                (unsigned long long)r.peakInstsInFlight);
    std::printf("  pred: pred=%llu miss=%llu exit=%llu tgt=%llu cr=%llu\n",
                (unsigned long long)r.predictor.predictions,
                (unsigned long long)r.predictor.mispredictions,
                (unsigned long long)r.predictor.exitMispredicts,
                (unsigned long long)r.predictor.targetMispredicts,
                (unsigned long long)r.predictor.callRetMispredicts);
    std::printf("  opnPackets=%llu localBypasses=%llu\n",
                (unsigned long long)r.opnPackets,
                (unsigned long long)r.localBypasses);
    static const char *cls[] = {"EtEt", "EtDt", "EtRt",
                                "EtGt", "DtRt", "DtEt",
                                "RtEt", "Other"};
    for (size_t c = 0; c < r.opnHops.size(); ++c)
        dumpDist(cls[c], r.opnHops[c]);
}

int
main(int argc, char **argv)
{
    bool all = false;
    std::string cacheDir;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--all")) {
            all = true;
        } else if (!std::strcmp(argv[i], "--cache") && i + 1 < argc) {
            cacheDir = argv[++i];
        } else {
            std::fprintf(stderr,
                         "usage: dump_stats [--all] [--cache DIR]\n");
            return 2;
        }
    }
    sim::Campaign campaign = cacheDir.empty()
        ? sim::Campaign::fromEnv() : sim::Campaign(cacheDir);

    if (!all) {
        struct Entry
        {
            const char *name;
            bool hand;
        };
        // Mixed suites and both compiler presets; the hand-preset
        // entries stress LSQ forwarding and dense blocks.
        static const Entry entries[] = {
            {"a2time", false},  {"autocor", false}, {"gcc", false},
            {"fft", false},     {"vadd", true},     {"matrix", true},
        };
        for (const auto &e : entries) {
            const auto &w = workloads::find(e.name);
            auto opts = e.hand ? compiler::Options::hand()
                               : compiler::Options::compiled();
            auto r = campaign.runTrips(w, opts, true);
            dump(e.name, e.hand ? "hand" : "compiled", r.uarch);
        }
        std::fprintf(stderr, "%s\n", campaign.report().c_str());
        return 0;
    }

    // --all: every workload under the compiled preset (hand too for
    // the Simple suite), then the reduced uarch presets on a fixed
    // subset covering every suite.
    for (const auto &w : workloads::all()) {
        auto r = campaign.runTrips(w, compiler::Options::compiled(), true);
        dump(w.name.c_str(), "compiled", r.uarch);
        if (w.isSimple) {
            auto h = campaign.runTrips(w, compiler::Options::hand(), true);
            dump(w.name.c_str(), "hand", h.uarch);
        }
    }
    struct Preset
    {
        const char *name;
        uarch::UarchConfig cfg;
    };
    const Preset presets[] = {
        {"smallWindow", uarch::UarchConfig::smallWindow()},
        {"narrowIssue", uarch::UarchConfig::narrowIssue()},
        {"tinyMemory", uarch::UarchConfig::tinyMemory()},
    };
    static const char *subset[] = {"vadd", "matrix", "fft", "a2time",
                                   "gcc", "equake"};
    for (const auto &p : presets) {
        for (const char *name : subset) {
            const auto &w = workloads::find(name);
            auto r = campaign.runTrips(w, compiler::Options::compiled(),
                                       true, p.cfg);
            std::printf("--- preset %s ---\n", p.name);
            dump(name, "compiled", r.uarch);
        }
    }
    std::fprintf(stderr, "%s\n", campaign.report().c_str());
    return 0;
}
