/**
 * @file
 * Equivalence harness for simulator refactors: runs the cycle-level
 * model on a fixed set of workloads and prints every UarchResult field
 * in a stable text format. Capture the output before a performance
 * change, diff it after — any timing-semantics drift shows up as a
 * textual difference (see README "simulator performance").
 *
 * --all widens the sweep to every registered workload (compiled
 * preset; hand preset too for the Simple suite) plus the reduced
 * uarch presets on a fixed subset — the coverage the "bit-identical
 * single-core timing" acceptance check diffs across refactors.
 *
 * --cache DIR (or $TRIPSIM_CACHE) routes every run through the
 * campaign cache (sim/campaign.hh): a warm re-run performs zero
 * simulation and must print byte-identical stats — the CI campaign
 * stage diffs exactly that. Cache hit/miss counts go to stderr so
 * stdout stays diffable.
 *
 * Observability (obs/, README "Observability"): --trace FILE writes a
 * Chrome trace-event JSON of the default entry set, --metrics FILE a
 * metric time-series (JSONL, or CSV when FILE ends in .csv; --period N
 * sets the sampling period in cycles), --stalls appends the per-run
 * stall breakdown + hottest-blocks report to stdout after each entry's
 * stats. With any of these the entries run through CycleSim with the
 * observers attached; the stats text stays byte-identical to an
 * unobserved run (the CI trace-smoke stage diffs exactly that), so
 * these flags exclude --all/--cache rather than silently changing
 * what is simulated.
 */
#include <cstdio>
#include <cstring>

#include "compiler/codegen.hh"
#include "core/machines.hh"
#include "obs/obs.hh"
#include "sim/campaign.hh"
#include "wir/interp.hh"

using namespace trips;

static void
dumpDist(const char *name, const Distribution &d)
{
    std::printf("  %s: samples=%llu mean=%.9f buckets=[",
                name, static_cast<unsigned long long>(d.samples()),
                d.mean());
    for (unsigned b = 0; b < d.numBuckets(); ++b)
        std::printf("%s%llu", b ? "," : "",
                    static_cast<unsigned long long>(d.count(b)));
    std::printf("]\n");
}

static void
dump(const char *name, const char *preset, const uarch::UarchResult &r)
{
    std::printf("=== %s (%s) ===\n", name, preset);
    std::printf("  retVal=%lld fuel=%d\n",
                static_cast<long long>(r.retVal), r.fuelExhausted);
    std::printf("  cycles=%llu committed=%llu flushed=%llu "
                "fetched=%llu fired=%llu\n",
                (unsigned long long)r.cycles,
                (unsigned long long)r.blocksCommitted,
                (unsigned long long)r.blocksFlushed,
                (unsigned long long)r.instsFetched,
                (unsigned long long)r.instsFired);
    std::printf("  brMiss=%llu crMiss=%llu violFlush=%llu icMiss=%llu\n",
                (unsigned long long)r.branchMispredicts,
                (unsigned long long)r.callRetMispredicts,
                (unsigned long long)r.loadViolationFlushes,
                (unsigned long long)r.icacheMissStalls);
    std::printf("  l1d=%llu/%llu l2=%llu/%llu loads=%llu stores=%llu\n",
                (unsigned long long)r.l1dHits,
                (unsigned long long)r.l1dMisses,
                (unsigned long long)r.l2Hits,
                (unsigned long long)r.l2Misses,
                (unsigned long long)r.loadsExecuted,
                (unsigned long long)r.storesCommitted);
    std::printf("  l1i=%llu/%llu l1dWb=%llu l2Wb=%llu\n",
                (unsigned long long)r.l1iHits,
                (unsigned long long)r.l1iMisses,
                (unsigned long long)r.l1dWritebacks,
                (unsigned long long)r.l2Writebacks);
    std::printf("  bytesL1=%llu bytesL2=%llu bytesMem=%llu\n",
                (unsigned long long)r.bytesL1,
                (unsigned long long)r.bytesL2,
                (unsigned long long)r.bytesMem);
    std::printf("  avgBlocks=%.9f avgInsts=%.9f peakInsts=%llu\n",
                r.avgBlocksInFlight, r.avgInstsInFlight,
                (unsigned long long)r.peakInstsInFlight);
    std::printf("  pred: pred=%llu miss=%llu exit=%llu tgt=%llu cr=%llu\n",
                (unsigned long long)r.predictor.predictions,
                (unsigned long long)r.predictor.mispredictions,
                (unsigned long long)r.predictor.exitMispredicts,
                (unsigned long long)r.predictor.targetMispredicts,
                (unsigned long long)r.predictor.callRetMispredicts);
    std::printf("  opnPackets=%llu localBypasses=%llu\n",
                (unsigned long long)r.opnPackets,
                (unsigned long long)r.localBypasses);
    static const char *cls[] = {"EtEt", "EtDt", "EtRt",
                                "EtGt", "DtRt", "DtEt",
                                "RtEt", "Other"};
    for (size_t c = 0; c < r.opnHops.size(); ++c)
        dumpDist(cls[c], r.opnHops[c]);
}

/** The default entry set (mixed suites and both compiler presets; the
 *  hand-preset entries stress LSQ forwarding and dense blocks). */
struct Entry
{
    const char *name;
    bool hand;
};
static const Entry entries[] = {
    {"a2time", false},  {"autocor", false}, {"gcc", false},
    {"fft", false},     {"vadd", true},     {"matrix", true},
};

/** Observed mode: the default entry set through CycleSim with obs
 *  attached. The dump() text must stay byte-identical to the
 *  unobserved path — CI diffs it. */
static int
runObserved(const std::string &trace_path, const std::string &metrics_path,
            bool stalls, u64 period)
{
    obs::TraceSink sink;
    obs::TraceSink *trace = trace_path.empty() ? nullptr : &sink;
    obs::MetricRegistry metrics;
    obs::MetricRegistry *mreg = metrics_path.empty() ? nullptr : &metrics;

    for (const auto &e : entries) {
        const auto &w = workloads::find(e.name);
        auto opts = e.hand ? compiler::Options::hand()
                           : compiler::Options::compiled();
        wir::Module mod;
        w.build(mod);
        auto prog = compiler::compileToTrips(mod, opts);
        MemImage mem;
        wir::Interp::loadGlobals(mod, mem);
        uarch::CycleSim csim(prog, mem);

        // One trace process row and one metric prefix per entry; one
        // stall collector per entry so breakdowns stay per-run.
        obs::StallCollector stall;
        obs::CoreObs co;
        co.trace = trace;
        co.metrics = mreg;
        co.stalls = stalls ? &stall : nullptr;
        co.samplePeriod = period;
        co.pid = static_cast<u32>(&e - entries);
        co.metricPrefix = std::string(e.name) + ".";
        if (trace)
            sink.setProcessName(co.pid, e.name);
        csim.attachObs(&co);

        auto r = csim.run();
        dump(e.name, e.hand ? "hand" : "compiled", r);
        if (stalls) {
            std::vector<std::string> labels;
            for (u32 b = 0; b < prog.numBlocks(); ++b)
                labels.push_back(prog.block(b).label);
            stall.report(stdout, labels);
            if (stall.total() != r.cycles) {
                std::fprintf(stderr,
                             "stall breakdown total %llu != cycles %llu\n",
                             (unsigned long long)stall.total(),
                             (unsigned long long)r.cycles);
                return 1;
            }
        }
    }

    if (trace && !sink.writeFile(trace_path)) {
        std::fprintf(stderr, "cannot write trace %s\n",
                     trace_path.c_str());
        return 1;
    }
    if (mreg) {
        bool csv = metrics_path.size() > 4 &&
            metrics_path.compare(metrics_path.size() - 4, 4, ".csv") == 0;
        bool ok = csv ? metrics.writeCsv(metrics_path)
                      : metrics.writeJsonl(metrics_path);
        if (!ok) {
            std::fprintf(stderr, "cannot write metrics %s\n",
                         metrics_path.c_str());
            return 1;
        }
    }
    return 0;
}

int
main(int argc, char **argv)
{
    bool all = false;
    bool stalls = false;
    u64 period = 0;
    std::string cacheDir, tracePath, metricsPath;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--all")) {
            all = true;
        } else if (!std::strcmp(argv[i], "--cache") && i + 1 < argc) {
            cacheDir = argv[++i];
        } else if (!std::strcmp(argv[i], "--trace") && i + 1 < argc) {
            tracePath = argv[++i];
        } else if (!std::strcmp(argv[i], "--metrics") && i + 1 < argc) {
            metricsPath = argv[++i];
        } else if (!std::strcmp(argv[i], "--stalls")) {
            stalls = true;
        } else if (!std::strcmp(argv[i], "--period") && i + 1 < argc) {
            period = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: dump_stats [--all] [--cache DIR]\n"
                         "                  [--trace FILE] [--metrics FILE]"
                         " [--stalls] [--period N]\n");
            return 2;
        }
    }
    bool observed = !tracePath.empty() || !metricsPath.empty() || stalls;
    if (observed && (all || !cacheDir.empty())) {
        std::fprintf(stderr, "--trace/--metrics/--stalls run the default "
                             "entry set uncached; drop --all/--cache\n");
        return 2;
    }
    if (observed)
        return runObserved(tracePath, metricsPath, stalls, period);

    sim::Campaign campaign = cacheDir.empty()
        ? sim::Campaign::fromEnv() : sim::Campaign(cacheDir);

    if (!all) {
        for (const auto &e : entries) {
            const auto &w = workloads::find(e.name);
            auto opts = e.hand ? compiler::Options::hand()
                               : compiler::Options::compiled();
            auto r = campaign.runTrips(w, opts, true);
            dump(e.name, e.hand ? "hand" : "compiled", r.uarch);
        }
        std::fprintf(stderr, "%s\n", campaign.report().c_str());
        return 0;
    }

    // --all: every workload under the compiled preset (hand too for
    // the Simple suite), then the reduced uarch presets on a fixed
    // subset covering every suite.
    for (const auto &w : workloads::all()) {
        auto r = campaign.runTrips(w, compiler::Options::compiled(), true);
        dump(w.name.c_str(), "compiled", r.uarch);
        if (w.isSimple) {
            auto h = campaign.runTrips(w, compiler::Options::hand(), true);
            dump(w.name.c_str(), "hand", h.uarch);
        }
    }
    struct Preset
    {
        const char *name;
        uarch::UarchConfig cfg;
    };
    const Preset presets[] = {
        {"smallWindow", uarch::UarchConfig::smallWindow()},
        {"narrowIssue", uarch::UarchConfig::narrowIssue()},
        {"tinyMemory", uarch::UarchConfig::tinyMemory()},
    };
    static const char *subset[] = {"vadd", "matrix", "fft", "a2time",
                                   "gcc", "equake"};
    for (const auto &p : presets) {
        for (const char *name : subset) {
            const auto &w = workloads::find(name);
            auto r = campaign.runTrips(w, compiler::Options::compiled(),
                                       true, p.cfg);
            std::printf("--- preset %s ---\n", p.name);
            dump(name, "compiled", r.uarch);
        }
    }
    std::fprintf(stderr, "%s\n", campaign.report().c_str());
    return 0;
}
