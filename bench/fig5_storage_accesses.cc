/** Fig. 5: storage accesses (memory + registers) normalized to RISC. */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Figure 5: storage accesses normalized to PowerPC",
                  "TRIPS executes ~half the memory accesses and only "
                  "10-20% of the register accesses; direct operand "
                  "communication replaces the rest");
    TextTable t;
    t.header({"bench", "mem/ppcMem", "regRW/ppcRegRW", "operand/ppcRegRW",
              "(reads+writes+opn)/ppcRegRW"});
    std::vector<double> memr, regr;
    auto emit = [&](const std::string &n, const sim::IsaStats &s,
                    const risc::RiscCounters &p) {
        double pmem = static_cast<double>(p.loads + p.stores);
        double preg = static_cast<double>(p.regReads + p.regWrites);
        double mem = (s.loadsExecuted + s.storesCommitted) / pmem;
        double reg = (s.readsFetched + s.writesCommitted) / preg;
        double opn = s.operandMessages / preg;
        t.row({n, TextTable::fmt(mem, 2), TextTable::fmt(reg, 2),
               TextTable::fmt(opn, 2), TextTable::fmt(reg + opn, 2)});
        memr.push_back(mem);
        regr.push_back(reg);
    };
    for (auto *w : bench::figureOrderSimple()) {
        auto r = core::runRisc(*w);
        auto c = bench::runTrips(*w, compiler::Options::compiled(), false);
        emit(w->name + " C", c.isa, r.counters);
        auto h = bench::runTrips(*w, compiler::Options::hand(), false);
        emit(w->name + " H", h.isa, r.counters);
    }
    t.rule();
    for (const char *s : {"eembc", "specint", "specfp"}) {
        std::vector<double> mm, gg;
        for (auto *w : workloads::suite(s)) {
            auto r = core::runRisc(*w);
            auto c = bench::runTrips(*w, compiler::Options::compiled(),
                                    false);
            mm.push_back((c.isa.loadsExecuted + c.isa.storesCommitted) /
                         static_cast<double>(r.counters.loads +
                                             r.counters.stores));
            gg.push_back((c.isa.readsFetched + c.isa.writesCommitted) /
                         static_cast<double>(r.counters.regReads +
                                             r.counters.regWrites));
        }
        t.row({std::string(s) + " geomean", TextTable::fmt(geomean(mm), 2),
               TextTable::fmt(geomean(gg), 2), "-", "-"});
    }
    t.print(std::cout);
    std::cout << "\nSimple-suite geomean: mem "
              << TextTable::fmt(geomean(memr), 2) << " (paper ~0.5), reg "
              << TextTable::fmt(geomean(regr), 2) << " (paper 0.1-0.2)\n";
    return 0;
}
