/** Table 3: performance-counter events per 1000 useful instructions. */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Table 3: SPEC event counters per 1000 useful insts",
                  "I-cache misses and call/ret mispredicts hurt crafty/"
                  "perlbmk/twolf/vortex; load flushes <0.6; window "
                  "utilization tracks flush rates");
    TextTable t;
    t.header({"bench", "c2.brMiss", "t.brMiss", "t.callRet", "c2.icMiss",
              "t.icMiss", "t.ldFlush", "blk*8", "instsInFlight"});
    for (const char *s : {"specint", "specfp"}) {
        for (auto *w : workloads::suite(s)) {
            auto rc = bench::runTrips(*w, compiler::Options::compiled(),
                                     true);
            auto c2 = core::runPlatform(*w, ooo::OooConfig::core2(),
                                        risc::RiscOptions::gcc());
            double useful = static_cast<double>(rc.isa.useful);
            auto per1k = [&](double v) {
                return TextTable::fmt(1000.0 * v / useful, 2);
            };
            double blk8 = rc.isa.meanBlockSize() * 8;
            t.row({w->name, per1k(static_cast<double>(c2.branchMispredicts)),
                   per1k(static_cast<double>(
                       rc.uarch.predictor.mispredictions -
                       rc.uarch.predictor.callRetMispredicts)),
                   per1k(static_cast<double>(
                       rc.uarch.predictor.callRetMispredicts)),
                   per1k(static_cast<double>(c2.icacheMisses)),
                   per1k(static_cast<double>(rc.uarch.icacheMissStalls)),
                   per1k(static_cast<double>(
                       rc.uarch.loadViolationFlushes)),
                   TextTable::fmt(blk8, 1),
                   TextTable::fmt(rc.uarch.avgInstsInFlight, 1)});
        }
        t.rule();
    }
    t.print(std::cout);
    return 0;
}
