/** Fig. 12: SPEC speedups relative to Core 2 (gcc). */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Figure 12: SPEC proxies, speedup vs Core2-gcc",
                  "TRIPS INT ~0.5x Core 2; FP roughly parity; "
                  "Core2-icc ~1.6x TRIPS on FP");
    TextTable t;
    t.header({"bench", "P3-gcc", "P4-gcc", "Core2-icc", "TRIPS-C"});
    for (const char *s : {"specint", "specfp"}) {
        std::vector<double> tc, p3s, p4s, icc;
        for (auto *w : workloads::suite(s)) {
            auto g = risc::RiscOptions::gcc();
            auto base = core::runPlatform(*w, ooo::OooConfig::core2(), g);
            double b = static_cast<double>(base.cycles);
            auto p3 = core::runPlatform(*w, ooo::OooConfig::pentium3(),
                                        g);
            auto p4 = core::runPlatform(*w, ooo::OooConfig::pentium4(),
                                        g);
            auto c2i = core::runPlatform(*w, ooo::OooConfig::core2(),
                                         risc::RiscOptions::icc());
            auto rc = bench::runTrips(*w, compiler::Options::compiled(),
                                     true);
            double s3 = b / p3.cycles, s4 = b / p4.cycles,
                   si = b / c2i.cycles, sc = b / rc.uarch.cycles;
            t.row({w->name, TextTable::fmt(s3, 2), TextTable::fmt(s4, 2),
                   TextTable::fmt(si, 2), TextTable::fmt(sc, 2)});
            p3s.push_back(s3);
            p4s.push_back(s4);
            icc.push_back(si);
            tc.push_back(sc);
        }
        t.row({std::string(s) + " geomean", TextTable::fmt(geomean(p3s), 2),
               TextTable::fmt(geomean(p4s), 2),
               TextTable::fmt(geomean(icc), 2),
               TextTable::fmt(geomean(tc), 2)});
        t.rule();
    }
    // EEMBC geomean for the rightmost bar of the paper's figure.
    std::vector<double> tc;
    for (auto *w : workloads::suite("eembc")) {
        auto base = core::runPlatform(*w, ooo::OooConfig::core2(),
                                      risc::RiscOptions::gcc());
        auto rc = bench::runTrips(*w, compiler::Options::compiled(), true);
        tc.push_back(static_cast<double>(base.cycles) /
                     rc.uarch.cycles);
    }
    t.row({"eembc geomean (TRIPS-C)", "-", "-", "-",
           TextTable::fmt(geomean(tc), 2)});
    t.print(std::cout);
    return 0;
}
