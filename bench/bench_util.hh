/**
 * @file
 * Shared helpers for the table/figure reproduction binaries: suite
 * iteration, means, and consistent "paper vs measured" framing.
 */

#ifndef TRIPSIM_BENCH_BENCH_UTIL_HH
#define TRIPSIM_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <vector>

#include "core/machines.hh"
#include "sim/campaign.hh"
#include "support/table.hh"
#include "workloads/workload.hh"

namespace trips::bench {

/**
 * Shared campaign runner for the figure/table binaries, configured
 * from $TRIPSIM_CACHE (unset/empty = plain uncached runs). With a
 * cache directory set, re-running any figure bench after a campaign
 * cold run performs zero TRIPS simulation.
 */
inline sim::Campaign &
campaign()
{
    static sim::Campaign c = sim::Campaign::fromEnv();
    return c;
}

/** Cache-aware drop-in for core::runTrips in the figure drivers. */
inline core::TripsRun
runTrips(const workloads::Workload &w, const compiler::Options &opts,
         bool cycle_level,
         const uarch::UarchConfig &ucfg = uarch::UarchConfig{})
{
    return campaign().runTrips(w, opts, cycle_level, ucfg);
}

inline void
header(const std::string &what, const std::string &paper_claim)
{
    std::cout << "==========================================================\n"
              << what << "\n"
              << "Paper reference: " << paper_claim << "\n"
              << "==========================================================\n";
}

/** Names of the simple-suite benchmarks in the paper's Fig. 3 order. */
inline std::vector<const workloads::Workload *>
figureOrderSimple()
{
    std::vector<std::string> order = {
        "a2time", "rspeed", "ospf", "routelookup", "autocor", "conven",
        "fbital", "fft", "802.11a", "8b10b", "fmradio", "ct", "conv",
        "matrix", "vadd",
    };
    std::vector<const workloads::Workload *> out;
    for (const auto &n : order)
        out.push_back(&workloads::find(n));
    return out;
}

} // namespace trips::bench

#endif // TRIPSIM_BENCH_BENCH_UTIL_HH
