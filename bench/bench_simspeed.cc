/** google-benchmark microbenchmarks of the simulators themselves. */
#include <benchmark/benchmark.h>

#include "core/machines.hh"
using namespace trips;

static void BM_FuncSim(benchmark::State &state) {
    const auto &w = workloads::find("autocor");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), false);
        benchmark::DoNotOptimize(r.retVal);
    }
}
BENCHMARK(BM_FuncSim)->Unit(benchmark::kMillisecond);

static void BM_CycleSim(benchmark::State &state) {
    const auto &w = workloads::find("a2time");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), true);
        benchmark::DoNotOptimize(r.uarch.cycles);
    }
}
BENCHMARK(BM_CycleSim)->Unit(benchmark::kMillisecond);

static void BM_OooModel(benchmark::State &state) {
    const auto &w = workloads::find("rspeed");
    for (auto _ : state) {
        auto r = core::runPlatform(w, ooo::OooConfig::core2(),
                                   risc::RiscOptions::gcc());
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_OooModel)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
