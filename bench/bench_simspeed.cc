/** google-benchmark microbenchmarks of the simulators themselves
 *  (built against the bundled minibench harness by default; see
 *  bench/minibench/benchmark/benchmark.h). */
#include <benchmark/benchmark.h>

#include "core/machines.hh"
using namespace trips;

// BM_FuncSim is the historical name tracked in BENCH_simspeed.json
// baselines; it measures the default engine (pre-decoded). The
// _legacy/_predecoded pair pins both engines explicitly so the
// recorded JSON carries the speedup ratio on the same machine/run.
static void BM_FuncSim(benchmark::State &state) {
    const auto &w = workloads::find("autocor");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), false);
        benchmark::DoNotOptimize(r.retVal);
    }
}
BENCHMARK(BM_FuncSim)->Unit(benchmark::kMillisecond);

static void BM_FuncSim_legacy(benchmark::State &state) {
    const auto &w = workloads::find("autocor");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), false,
                                uarch::UarchConfig{},
                                sim::FuncEngine::Legacy);
        benchmark::DoNotOptimize(r.retVal);
    }
}
BENCHMARK(BM_FuncSim_legacy)->Unit(benchmark::kMillisecond);

static void BM_FuncSim_predecoded(benchmark::State &state) {
    const auto &w = workloads::find("autocor");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), false,
                                uarch::UarchConfig{},
                                sim::FuncEngine::Predecoded);
        benchmark::DoNotOptimize(r.retVal);
    }
}
BENCHMARK(BM_FuncSim_predecoded)->Unit(benchmark::kMillisecond);

static void BM_CycleSim(benchmark::State &state) {
    const auto &w = workloads::find("a2time");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), true);
        benchmark::DoNotOptimize(r.uarch.cycles);
    }
}
BENCHMARK(BM_CycleSim)->Unit(benchmark::kMillisecond);

static void BM_OooModel(benchmark::State &state) {
    const auto &w = workloads::find("rspeed");
    for (auto _ : state) {
        auto r = core::runPlatform(w, ooo::OooConfig::core2(),
                                   risc::RiscOptions::gcc());
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_OooModel)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
