/** google-benchmark microbenchmarks of the simulators themselves
 *  (built against the bundled minibench harness by default; see
 *  bench/minibench/benchmark/benchmark.h). */
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "compiler/codegen.hh"
#include "core/machines.hh"
#include "obs/obs.hh"
#include "uarch/chip_sim.hh"
#include "wir/interp.hh"
using namespace trips;

// BM_FuncSim is the historical name tracked in BENCH_simspeed.json
// baselines; it measures the default engine (pre-decoded). The
// _legacy/_predecoded pair pins both engines explicitly so the
// recorded JSON carries the speedup ratio on the same machine/run.
static void BM_FuncSim(benchmark::State &state) {
    const auto &w = workloads::find("autocor");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), false);
        benchmark::DoNotOptimize(r.retVal);
    }
}
BENCHMARK(BM_FuncSim)->Unit(benchmark::kMillisecond);

static void BM_FuncSim_legacy(benchmark::State &state) {
    const auto &w = workloads::find("autocor");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), false,
                                uarch::UarchConfig{},
                                sim::FuncEngine::Legacy);
        benchmark::DoNotOptimize(r.retVal);
    }
}
BENCHMARK(BM_FuncSim_legacy)->Unit(benchmark::kMillisecond);

static void BM_FuncSim_predecoded(benchmark::State &state) {
    const auto &w = workloads::find("autocor");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), false,
                                uarch::UarchConfig{},
                                sim::FuncEngine::Predecoded);
        benchmark::DoNotOptimize(r.retVal);
    }
}
BENCHMARK(BM_FuncSim_predecoded)->Unit(benchmark::kMillisecond);

static void BM_CycleSim(benchmark::State &state) {
    const auto &w = workloads::find("a2time");
    for (auto _ : state) {
        auto r = core::runTrips(w, compiler::Options::compiled(), true);
        benchmark::DoNotOptimize(r.uarch.cycles);
    }
}
BENCHMARK(BM_CycleSim)->Unit(benchmark::kMillisecond);

// The observability pair: identical CycleSim-only bodies, one with
// the full observer set attached (trace + metrics + stalls), one
// detached. The detached run is the null-sink fast path — its cost
// relative to the pre-instrumentation BM_CycleSim is recorded (and
// gated < 2%) in the BENCH_simspeed.json baselines; the traced run
// shows what full tracing costs when you actually ask for it.
namespace {

struct ObsBenchFixture {
    wir::Module mod;
    isa::Program prog;

    ObsBenchFixture()
        : prog((workloads::find("a2time").build(mod),
                compiler::compileToTrips(mod,
                                         compiler::Options::compiled())))
    {}

    u64 run(bool observed) {
        obs::TraceSink sink;
        obs::MetricRegistry metrics;
        obs::StallCollector stalls;
        obs::CoreObs co;
        co.trace = &sink;
        co.metrics = &metrics;
        co.stalls = &stalls;
        co.samplePeriod = 4096;
        MemImage mem;
        wir::Interp::loadGlobals(mod, mem);
        uarch::CycleSim sim(prog, mem);
        if (observed)
            sim.attachObs(&co);
        auto r = sim.run();
        benchmark::DoNotOptimize(sink.events());
        return r.cycles;
    }
};

} // namespace

static void BM_CycleSim_untraced(benchmark::State &state) {
    ObsBenchFixture fx;
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.run(false));
}
BENCHMARK(BM_CycleSim_untraced)->Unit(benchmark::kMillisecond);

static void BM_CycleSim_traced(benchmark::State &state) {
    ObsBenchFixture fx;
    for (auto _ : state)
        benchmark::DoNotOptimize(fx.run(true));
}
BENCHMARK(BM_CycleSim_traced)->Unit(benchmark::kMillisecond);

// The serial/parallel ChipSim pair drives the multicore CI perf gate:
// same 4-core mix, lockstep reference vs the relaxed-quantum engine.
// Programs are compiled once; each iteration gets fresh memory images
// and a fresh chip. On a 1-core host the parallel engine only pays
// its barrier overhead — the recorded speedup is meaningful on 8+
// hardware threads (where CI runs the >=1.5x gate).
namespace {

struct ChipMixFixture {
    std::vector<wir::Module> mods;
    std::vector<isa::Program> progs;

    ChipMixFixture() {
        const char *names[] = {"vadd", "ct", "autocor", "8b10b"};
        for (const char *n : names) {
            mods.emplace_back();
            workloads::find(n).build(mods.back());
            progs.push_back(compiler::compileToTrips(
                mods.back(), compiler::Options::compiled()));
        }
    }

    u64 run(uarch::ChipEngine engine) {
        uarch::ChipConfig ccfg;
        ccfg.numCores = static_cast<unsigned>(progs.size());
        ccfg.engine = engine;
        std::vector<MemImage> mems(progs.size());
        std::vector<uarch::ChipJob> jobs(progs.size());
        for (size_t i = 0; i < progs.size(); ++i) {
            wir::Interp::loadGlobals(mods[i], mems[i]);
            jobs[i] = {&progs[i], &mems[i]};
        }
        uarch::ChipSim chip(jobs, ccfg);
        return chip.run().cycles;
    }
};

ChipMixFixture &chipMix() {
    static ChipMixFixture f;
    return f;
}

} // namespace

static void BM_ChipSim_serial(benchmark::State &state) {
    auto &f = chipMix();
    for (auto _ : state)
        benchmark::DoNotOptimize(f.run(uarch::ChipEngine::Serial));
}
BENCHMARK(BM_ChipSim_serial)->Unit(benchmark::kMillisecond);

static void BM_ChipSim_parallel(benchmark::State &state) {
    auto &f = chipMix();
    for (auto _ : state)
        benchmark::DoNotOptimize(f.run(uarch::ChipEngine::Parallel));
}
BENCHMARK(BM_ChipSim_parallel)->Unit(benchmark::kMillisecond);

static void BM_OooModel(benchmark::State &state) {
    const auto &w = workloads::find("rspeed");
    for (auto _ : state) {
        auto r = core::runPlatform(w, ooo::OooConfig::core2(),
                                   risc::RiscOptions::gcc());
        benchmark::DoNotOptimize(r.cycles);
    }
}
BENCHMARK(BM_OooModel)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
