/**
 * @file
 * Parallel sweep driver.
 *
 * Three modes, all sharded across the work-stealing SweepPool:
 *
 *   --figures       run the full (workload x compiler preset x model)
 *                   simulation matrix the paper's figures are built
 *                   from, and report wall-clock + aggregate stats.
 *                   With --json, emit a machine-readable summary
 *                   (consumed by bench/run_sweep.sh to record the
 *                   serial-vs-parallel speedup in BENCH_simspeed.json).
 *   --fuzz N        differentially check N generated programs
 *                   (seeds taskSeed(--seed, i)) across every model;
 *                   exit 1 and print repro lines on divergence.
 *                   --out FILE additionally writes one repro seed per
 *                   line (CI uploads it as an artifact).
 *   --repro SEED    re-run one generated program verbosely
 *                   [--shrink K applies the minimizer's shape rung;
 *                   --dump-til streams the TIL after each backend
 *                   pass; --compile-stats prints the per-pass
 *                   CompileStats table].
 *
 * Chip mode (N-core ChipSim over the shared L2/OCN uncore; --cores N
 * selects the core count, default 2; --parallel switches from the
 * serial lockstep reference to the relaxed-quantum parallel engine,
 * with --quantum Q barrier cycles and --threads T worker cap):
 *
 *   --chip --fuzz N         N generated program *mixes* (--cores
 *                           programs each), every mix run solo and
 *                           side by side; chip cores must match their
 *                           solo runs architecturally. Under
 *                           --parallel each mix is also replayed and
 *                           must be byte-identical (determinism pin).
 *   --chip --repro A --seed2 B      one pair, verbosely.
 *   --chip --repro A --seeds A,B,C  one N-core mix, verbosely.
 *   --chip --mix A,B,C,...  run named workloads concurrently (up to
 *                           16; round-robin filled to --cores); prints
 *                           per-core slowdown, shared-L2 miss
 *                           inflation, bank conflicts, OCN occupancy.
 *   --chip --mix-suite      group the whole workload registry into
 *                           --cores-sized mixes (round-robin tail
 *                           fill) and verify every mix against the
 *                           solo runs (the CI chip stage). With
 *                           --json, emit a machine-readable summary
 *                           carrying cores/engine/quantum/threads.
 *
 * Fast-simulation modes (src/sim/):
 *
 *   --cache DIR       route the --figures matrix through the campaign
 *                     cache: a warm re-run performs zero TRIPS
 *                     simulation (hits/misses land in the report and
 *                     the --json summary).
 *   --ckpt-every N    with --repro: run the checkpoint-restore
 *                     differential oracle on the generated program
 *                     (snapshot every N blocks; restored functional
 *                     and warm-started cycle runs must equal the
 *                     straight runs).
 *   --sampled LIST    sampled-vs-full accuracy gate on the named
 *                     workloads (comma list); exits 1 if any estimate
 *                     misses full-detail cycles by more than
 *                     --sample-tol percent (default 5).
 *   --sample F:W:M:P  sampling schedule for --sampled (ffwd, warmup,
 *                     measure, period blocks).
 *
 * Robustness modes (src/harness/guard.hh, src/sim/faultio.hh):
 *
 *   --timeout-ms N    per-task watchdog deadline on a --fuzz sweep
 *   --retries N       retry transient I/O failures with backoff
 *   --quarantine F    append failing (seed, shape, code, repro) JSONL
 *                     records to F; quarantined seeds don't fail the
 *                     sweep (only real divergences set exit 1)
 *   --fault-seed S    install the deterministic fault-injection plan
 *                     over checkpoint/cache file I/O
 *   --fault-period N  inject on ~1/N of I/O operations (default 4)
 *   --cache-fsck      with --cache DIR: delete CRC-broken entries and
 *                     orphaned temp files, then exit
 *
 * Common flags: --jobs N (0 = all cores), --seed BASE, --no-cycle,
 * --verify-til (TIL structural verification between backend passes),
 * --grow K (the block-splitting stress ladder, see ShapeConfig),
 * --engine legacy|predecoded (functional-simulator engine; default
 * predecoded, with legacy kept as the bit-identity reference).
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/machines.hh"
#include "harness/diff.hh"
#include "harness/guard.hh"
#include "obs/obs.hh"
#include "obs/progress.hh"
#include "sim/campaign.hh"
#include "sim/faultio.hh"
#include "sim/sampling.hh"
#include "harness/fuzzgen.hh"
#include "harness/sweep.hh"
#include "net/ocn.hh"
#include "uarch/chip_sim.hh"
#include "wir/interp.hh"

using namespace trips;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

namespace {

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

struct Args
{
    unsigned jobs = 0;
    u64 seed = 1;
    u64 fuzzCount = 0;
    u64 reproSeed = 0;
    u64 seed2 = 0;
    unsigned shrink = 0;
    unsigned grow = 0;
    bool figures = false;
    bool json = false;
    bool cycleLevel = true;
    bool repro = false;
    bool verifyTil = false;
    sim::FuncEngine engine = sim::FuncEngine::Predecoded;
    bool dumpTil = false;
    bool compileStats = false;
    bool chip = false;
    bool mixSuite = false;
    std::string mix;
    /** Chip-mode core count (0 = infer: mix size, or 2). */
    unsigned cores = 0;
    bool parallel = false;    ///< relaxed-quantum engine, not lockstep
    unsigned quantum = 1024;  ///< parallel-engine barrier period
    unsigned threads = 0;     ///< parallel-engine worker cap (0 = N)
    std::vector<u64> seeds;   ///< --seeds: one per chip core
    std::string outFile;
    std::string cacheDir;
    u64 ckptEvery = 0;
    std::string sampledList;
    std::string sampleSpec;
    double sampleTol = 5.0;
    double sampleSpread = 0.0;
    // Robustness knobs (harness/guard.hh, sim/faultio.hh).
    u64 timeoutMs = 0;
    unsigned retries = 0;
    std::string quarantineFile;
    // Observability (obs/): per-mix chip traces + sweep heartbeat.
    std::string traceDir;
    bool progress = false;
    bool faultInject = false;
    u64 faultSeed = 1;
    unsigned faultPeriod = 4;
    bool cacheFsck = false;
    /** Shape-field edits, applied on top of the grow/shrink rungs in
     *  shape() — so ladder and shape flags compose in any order. */
    std::vector<std::function<void(harness::ShapeConfig &)>> shapeEdits;

    harness::ShapeConfig
    shape() const
    {
        auto s = harness::ShapeConfig{}.grown(grow).shrunk(shrink);
        for (const auto &edit : shapeEdits)
            edit(s);
        return s;
    }
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: sweep_main [--jobs N] [--seed BASE] [--no-cycle]\n"
        << "                  [--verify-til] [--engine legacy|predecoded]\n"
        << "                  [--cache DIR] [--cache-fsck]\n"
        << "                  [--timeout-ms N] [--retries N]\n"
        << "                  [--quarantine FILE]\n"
        << "                  [--trace-dir DIR] [--progress]\n"
        << "                  [--fault-seed S] [--fault-period N]\n"
        << "                  (--figures [--json] | --fuzz N [--out F]\n"
        << "                   | --repro SEED [--shrink K]\n"
        << "                     [--ckpt-every N]\n"
        << "                   | --sampled W1,W2,... [--sample F:W:M:P]\n"
        << "                     [--sample-tol PCT]\n"
        << "                     [--sample-spread S]\n"
        << "                     [--dump-til] [--compile-stats]\n"
        << "                   | --chip [--cores N] [--parallel]\n"
        << "                     [--quantum Q] [--threads T]\n"
        << "                     (--fuzz N [--out F]\n"
        << "                      | --repro A (--seed2 B | --seeds A,B,...)\n"
        << "                      | --mix A,B,... | --mix-suite))\n"
        << "shape flags (fuzz/repro): --grow K --funcs N --top N\n"
        << "  --body N --depth N --trip N --slots N --live N\n"
        << "  --no-float --no-call --no-mem --no-subword\n"
        << "--engine selects the functional-simulator engine (default\n"
        << "predecoded; legacy is the reference interpreter the fast\n"
        << "engine must match bit for bit);\n"
        << "--verify-til runs the TIL structural verifier between\n"
        << "backend passes of every TRIPS compile (fatal on violation);\n"
        << "--grow walks the block-splitting stress ladder.\n"
        << "--chip runs N-core mixes on the shared L2/OCN uncore\n"
        << "(--cores N, 1..16, default 2); each core must match its\n"
        << "solo run architecturally. --parallel selects the\n"
        << "relaxed-quantum engine (--quantum Q barrier cycles,\n"
        << "--threads T worker cap); a given (mix, config, Q) is\n"
        << "exactly replayable regardless of T.\n"
        << "robustness: --timeout-ms/--retries/--quarantine harden a\n"
        << "--fuzz sweep (watchdog, transient-I/O backoff, JSONL\n"
        << "ledger of quarantined seeds); --fault-seed S installs the\n"
        << "deterministic I/O fault plan (--fault-period N: ~1/N ops\n"
        << "faulted) under checkpoint/cache file I/O; --cache-fsck\n"
        << "repairs a --cache DIR left by a mid-sweep kill.\n"
        << "observability: --trace-dir DIR writes one Perfetto-loadable\n"
        << "Chrome trace-event JSON per chip mix (--mix/--mix-suite;\n"
        << "block spans, memory instants, quantum barriers — see README\n"
        << "\"Observability\"); --progress prints a rate-limited stderr\n"
        << "heartbeat (done/total, elapsed, ETA, quarantine count) for\n"
        << "long --fuzz / --mix-suite sweeps.\n";
    std::exit(2);
}

Args
parse(int argc, char **argv)
{
    Args a;
    auto val = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage();
        return argv[++i];
    };
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--jobs")) {
            a.jobs = static_cast<unsigned>(std::stoul(val(i)));
        } else if (!std::strcmp(argv[i], "--seed")) {
            a.seed = std::stoull(val(i));
        } else if (!std::strcmp(argv[i], "--fuzz")) {
            a.fuzzCount = std::stoull(val(i));
        } else if (!std::strcmp(argv[i], "--repro")) {
            a.repro = true;
            a.reproSeed = std::stoull(val(i));
        } else if (!std::strcmp(argv[i], "--shrink")) {
            a.shrink = static_cast<unsigned>(std::stoul(val(i)));
        } else if (!std::strcmp(argv[i], "--grow")) {
            a.grow = static_cast<unsigned>(std::stoul(val(i)));
        } else if (!std::strcmp(argv[i], "--seed2")) {
            a.seed2 = std::stoull(val(i));
        } else if (!std::strcmp(argv[i], "--seeds")) {
            a.chip = true;
            std::string list = val(i), cur;
            for (char ch : list + ",") {
                if (ch == ',') {
                    if (!cur.empty())
                        a.seeds.push_back(std::stoull(cur));
                    cur.clear();
                } else {
                    cur += ch;
                }
            }
        } else if (!std::strcmp(argv[i], "--chip")) {
            a.chip = true;
        } else if (!std::strcmp(argv[i], "--cores")) {
            a.chip = true;
            a.cores = static_cast<unsigned>(std::stoul(val(i)));
        } else if (!std::strcmp(argv[i], "--parallel")) {
            a.parallel = true;
        } else if (!std::strcmp(argv[i], "--quantum")) {
            a.quantum = static_cast<unsigned>(std::stoul(val(i)));
        } else if (!std::strcmp(argv[i], "--threads")) {
            a.threads = static_cast<unsigned>(std::stoul(val(i)));
        } else if (!std::strcmp(argv[i], "--mix")) {
            a.chip = true;
            a.mix = val(i);
        } else if (!std::strcmp(argv[i], "--mix-suite")) {
            a.chip = true;
            a.mixSuite = true;
        } else if (!std::strcmp(argv[i], "--engine")) {
            std::string e = val(i);
            if (e == "legacy")
                a.engine = sim::FuncEngine::Legacy;
            else if (e == "predecoded")
                a.engine = sim::FuncEngine::Predecoded;
            else
                usage();
        } else if (!std::strcmp(argv[i], "--verify-til")) {
            a.verifyTil = true;
        } else if (!std::strcmp(argv[i], "--dump-til")) {
            a.dumpTil = true;
        } else if (!std::strcmp(argv[i], "--compile-stats")) {
            a.compileStats = true;
        } else if (!std::strcmp(argv[i], "--figures")) {
            a.figures = true;
        } else if (!std::strcmp(argv[i], "--json")) {
            a.json = true;
        } else if (!std::strcmp(argv[i], "--no-cycle")) {
            a.cycleLevel = false;
        } else if (!std::strcmp(argv[i], "--out")) {
            a.outFile = val(i);
        } else if (!std::strcmp(argv[i], "--cache")) {
            a.cacheDir = val(i);
        } else if (!std::strcmp(argv[i], "--ckpt-every")) {
            a.ckptEvery = std::stoull(val(i));
        } else if (!std::strcmp(argv[i], "--sampled")) {
            a.sampledList = val(i);
        } else if (!std::strcmp(argv[i], "--sample")) {
            a.sampleSpec = val(i);
        } else if (!std::strcmp(argv[i], "--sample-tol")) {
            a.sampleTol = std::stod(val(i));
        } else if (!std::strcmp(argv[i], "--sample-spread")) {
            a.sampleSpread = std::stod(val(i));
        } else if (!std::strcmp(argv[i], "--timeout-ms")) {
            a.timeoutMs = std::stoull(val(i));
        } else if (!std::strcmp(argv[i], "--retries")) {
            a.retries = static_cast<unsigned>(std::stoul(val(i)));
        } else if (!std::strcmp(argv[i], "--quarantine")) {
            a.quarantineFile = val(i);
        } else if (!std::strcmp(argv[i], "--trace-dir")) {
            a.traceDir = val(i);
        } else if (!std::strcmp(argv[i], "--progress")) {
            a.progress = true;
        } else if (!std::strcmp(argv[i], "--fault-seed")) {
            a.faultInject = true;
            a.faultSeed = std::stoull(val(i));
        } else if (!std::strcmp(argv[i], "--fault-period")) {
            a.faultInject = true;
            a.faultPeriod = static_cast<unsigned>(std::stoul(val(i)));
        } else if (!std::strcmp(argv[i], "--cache-fsck")) {
            a.cacheFsck = true;
        } else if (!std::strcmp(argv[i], "--funcs")) {
            unsigned v = static_cast<unsigned>(std::stoul(val(i)));
            a.shapeEdits.push_back(
                [v](auto &s) { s.helperFuncs = v; });
        } else if (!std::strcmp(argv[i], "--top")) {
            unsigned v = static_cast<unsigned>(std::stoul(val(i)));
            a.shapeEdits.push_back([v](auto &s) { s.topStmts = v; });
        } else if (!std::strcmp(argv[i], "--body")) {
            unsigned v = static_cast<unsigned>(std::stoul(val(i)));
            a.shapeEdits.push_back([v](auto &s) { s.bodyStmts = v; });
        } else if (!std::strcmp(argv[i], "--depth")) {
            unsigned v = static_cast<unsigned>(std::stoul(val(i)));
            a.shapeEdits.push_back([v](auto &s) { s.maxDepth = v; });
        } else if (!std::strcmp(argv[i], "--trip")) {
            unsigned v = static_cast<unsigned>(std::stoul(val(i)));
            a.shapeEdits.push_back([v](auto &s) { s.maxLoopTrip = v; });
        } else if (!std::strcmp(argv[i], "--slots")) {
            unsigned v = static_cast<unsigned>(std::stoul(val(i)));
            a.shapeEdits.push_back([v](auto &s) { s.memSlots = v; });
        } else if (!std::strcmp(argv[i], "--live")) {
            unsigned v = static_cast<unsigned>(std::stoul(val(i)));
            a.shapeEdits.push_back([v](auto &s) { s.liveValues = v; });
        } else if (!std::strcmp(argv[i], "--no-float")) {
            a.shapeEdits.push_back([](auto &s) { s.floats = false; });
        } else if (!std::strcmp(argv[i], "--no-call")) {
            a.shapeEdits.push_back([](auto &s) { s.calls = false; });
        } else if (!std::strcmp(argv[i], "--no-mem")) {
            a.shapeEdits.push_back([](auto &s) { s.memory = false; });
        } else if (!std::strcmp(argv[i], "--no-subword")) {
            a.shapeEdits.push_back([](auto &s) { s.subWord = false; });
        } else {
            usage();
        }
    }
    if (!a.figures && a.fuzzCount == 0 && !a.repro && a.mix.empty() &&
        !a.mixSuite && a.sampledList.empty() && !a.cacheFsck)
        usage();
    if (a.chip && a.repro && a.seed2 == 0 && a.seeds.empty())
        usage();
    if (a.cacheFsck && a.cacheDir.empty())
        usage();
    return a;
}

// ---------------------------------------------------------------------
// --figures: the simulation matrix behind the paper's figure set.
// ---------------------------------------------------------------------

struct MatrixTask
{
    const workloads::Workload *w;
    enum class Kind : u8 { Golden, RiscGcc, RiscIcc, Compiled, Hand } kind;
    bool cycle = false;
};

int
runFigures(const Args &a)
{
    std::vector<MatrixTask> tasks;
    for (const auto &w : workloads::all()) {
        tasks.push_back({&w, MatrixTask::Kind::Golden, false});
        tasks.push_back({&w, MatrixTask::Kind::RiscGcc, false});
        tasks.push_back({&w, MatrixTask::Kind::RiscIcc, false});
        tasks.push_back({&w, MatrixTask::Kind::Compiled, a.cycleLevel});
        if (w.isSimple)
            tasks.push_back({&w, MatrixTask::Kind::Hand, a.cycleLevel});
    }

    struct Cell
    {
        double ms = 0;
        u64 cycles = 0;
        double ipc = 0;
        u64 cacheHits = 0;
        u64 cacheMisses = 0;
        u64 cacheCorrupt = 0;
        u64 cacheStale = 0;
        u64 cacheDegradedWrites = 0;
    };
    std::vector<Cell> cells(tasks.size());

    harness::SweepPool pool(a.jobs);
    auto t0 = Clock::now();
    pool.parallelFor(tasks.size(), [&](u64 i) {
        const MatrixTask &t = tasks[i];
        auto c0 = Clock::now();
        switch (t.kind) {
          case MatrixTask::Kind::Golden:
            core::runGolden(*t.w);
            break;
          case MatrixTask::Kind::RiscGcc:
            core::runRisc(*t.w, risc::RiscOptions::gcc());
            break;
          case MatrixTask::Kind::RiscIcc:
            core::runRisc(*t.w, risc::RiscOptions::icc());
            break;
          case MatrixTask::Kind::Compiled:
          case MatrixTask::Kind::Hand: {
            auto opts = t.kind == MatrixTask::Kind::Compiled
                            ? compiler::Options::compiled()
                            : compiler::Options::hand();
            // One Campaign per task: the runner is not thread-safe,
            // but per-worker instances over one directory compose
            // (atomic stores, CRC-validated loads).
            sim::Campaign camp(a.cacheDir);
            auto r = camp.runTrips(*t.w, opts, t.cycle);
            cells[i].cacheHits = camp.cache().hits();
            cells[i].cacheMisses = camp.cache().misses();
            cells[i].cacheCorrupt = camp.cache().corrupt();
            cells[i].cacheStale = camp.cache().stale();
            cells[i].cacheDegradedWrites = camp.cache().degradedWrites();
            if (t.cycle) {
                cells[i].cycles = r.uarch.cycles;
                cells[i].ipc = r.uarch.ipc();
            }
            break;
          }
        }
        cells[i].ms = msSince(c0);
    });
    double wallMs = msSince(t0);

    double serialMs = 0;
    u64 totalCycles = 0;
    u64 cacheHits = 0, cacheMisses = 0;
    u64 cacheCorrupt = 0, cacheStale = 0, cacheDegraded = 0;
    for (const auto &c : cells) {
        serialMs += c.ms;
        totalCycles += c.cycles;
        cacheHits += c.cacheHits;
        cacheMisses += c.cacheMisses;
        cacheCorrupt += c.cacheCorrupt;
        cacheStale += c.cacheStale;
        cacheDegraded += c.cacheDegradedWrites;
    }

    if (a.json) {
        std::cout << "{\"tasks\": " << tasks.size()
                  << ", \"jobs\": " << pool.jobs()
                  << ", \"wall_ms\": " << wallMs
                  << ", \"task_ms_sum\": " << serialMs
                  << ", \"simulated_cycles\": " << totalCycles
                  << ", \"cache_hits\": " << cacheHits
                  << ", \"cache_misses\": " << cacheMisses
                  << ", \"cache_corrupt\": " << cacheCorrupt
                  << ", \"cache_stale\": " << cacheStale
                  << ", \"cache_degraded_writes\": " << cacheDegraded
                  << "}\n";
    } else {
        if (!a.cacheDir.empty())
            std::cout << "campaign-cache: dir=" << a.cacheDir
                      << " hits=" << cacheHits
                      << " misses=" << cacheMisses
                      << " corrupt=" << cacheCorrupt
                      << " stale=" << cacheStale
                      << " degraded-writes=" << cacheDegraded << "\n";
        std::cout << "figure matrix: " << tasks.size() << " tasks over "
                  << workloads::all().size() << " workloads on "
                  << pool.jobs() << " worker(s)\n"
                  << "wall " << wallMs << " ms (sum of task times "
                  << serialMs << " ms, pool efficiency "
                  << serialMs / (wallMs * pool.jobs()) << ")\n"
                  << "simulated " << totalCycles
                  << " cycle-level cycles\n";
    }
    return 0;
}

// ---------------------------------------------------------------------
// --fuzz: the differential sweep.
// ---------------------------------------------------------------------

int
runFuzz(const Args &a)
{
    harness::ShapeConfig shape = a.shape();
    harness::DiffOptions opts;
    opts.cycleLevel = a.cycleLevel;
    opts.verifyTil = a.verifyTil;
    opts.engine = a.engine;
    harness::SweepPool pool(a.jobs);

    // Any robustness knob switches to the guarded sweep: structured
    // failures (CompileError on a grown shape, corrupt files, invalid
    // derived configs) and watchdog timeouts are quarantined with a
    // repro line and the sweep finishes. A quarantined seed is not a
    // divergence: the exit code stays 0 unless models disagree.
    bool guarded = a.timeoutMs || a.retries || !a.quarantineFile.empty();
    harness::GuardConfig gcfg;
    gcfg.timeoutMs = a.timeoutMs;
    gcfg.retries = a.retries;
    harness::QuarantineLedger ledger(a.quarantineFile);

    auto t0 = Clock::now();
    obs::ProgressMeter prog(a.fuzzCount, a.progress);
    std::vector<harness::DiffResult> bad;
    harness::GuardedSweepResult g;
    if (guarded) {
        g = harness::sweepDiffGuarded(pool, a.seed, a.fuzzCount, shape,
                                      opts, gcfg, ledger, &prog);
        bad = std::move(g.divergences);
    } else {
        bad = harness::sweepDiff(pool, a.seed, a.fuzzCount, shape, opts,
                                 &prog);
    }
    prog.finish(ledger.entries());
    double wallMs = msSince(t0);

    // With --json the summary goes to stdout as one machine-readable
    // object (consumed by bench/run_sweep.sh) and the human lines move
    // to stderr; without it everything is human-readable on stdout.
    std::ostream &human = a.json ? std::cerr : std::cout;
    human << "fuzzed " << a.fuzzCount << " programs ["
          << shape.describe() << "] on " << pool.jobs()
          << " worker(s) in " << wallMs << " ms ("
          << a.fuzzCount / (wallMs / 1000.0) << " programs/s)\n";
    if (guarded) {
        human << "guarded: quarantined=" << g.quarantined
              << " timeouts=" << g.timeouts;
        if (ledger.enabled())
            human << " ledger=" << ledger.path();
        human << "\n";
    }
    for (const auto &r : bad) {
        human << "DIVERGENCE seed=" << r.seed << " ["
              << r.shape.describe() << "]\n  " << r.divergence
              << "\n  repro: " << r.reproCmd() << "\n";
    }
    if (!a.outFile.empty() && !bad.empty()) {
        std::ofstream out(a.outFile);
        for (const auto &r : bad)
            out << r.reproCmd() << "  # " << r.divergence << "\n";
    }
    human << (bad.empty() ? "all models agree\n" : "DIVERGENCES FOUND\n");
    if (a.json) {
        std::cout << "{\"programs\": " << a.fuzzCount
                  << ", \"jobs\": " << pool.jobs()
                  << ", \"wall_ms\": " << wallMs
                  << ", \"programs_per_second\": "
                  << a.fuzzCount / (wallMs / 1000.0)
                  << ", \"divergences\": " << bad.size()
                  << ", \"quarantined\": " << g.quarantined
                  << ", \"timeouts\": " << g.timeouts << "}\n";
    }
    return bad.empty() ? 0 : 1;
}

// ---------------------------------------------------------------------
// --chip: N-core mixes over the shared uncore.
// ---------------------------------------------------------------------

double
l2MissPct(const uarch::UarchResult &r)
{
    u64 total = r.l2Hits + r.l2Misses;
    return total ? 100.0 * static_cast<double>(r.l2Misses) / total : 0.0;
}

/** ChipConfig for an n-core mix under the flags' stepping engine. */
uarch::ChipConfig
chipConfig(const Args &a, unsigned n)
{
    uarch::ChipConfig ccfg;
    ccfg.numCores = n;
    ccfg.engine = a.parallel ? uarch::ChipEngine::Parallel
                             : uarch::ChipEngine::Serial;
    ccfg.quantum = a.quantum;
    ccfg.threads = a.threads;
    return ccfg;
}

struct MixReport
{
    bool ok = true;
    std::string detail;       ///< first architectural mismatch
    u64 chipCycles = 0;
    u64 bankConflicts = 0;
    double maxSlowdown = 1.0;
    double maxMissInflation = 0;   ///< percentage points
};

/** Run the named workloads solo and as one chip mix; verify each chip
 *  core reproduces its solo run architecturally (retVal + data
 *  segment). */
MixReport
runOneMix(const std::vector<const workloads::Workload *> &ws,
          const Args &a, bool print)
{
    MixReport rep;
    const size_t n = ws.size();
    uarch::ChipConfig ccfg = chipConfig(a, static_cast<unsigned>(n));

    std::vector<wir::Module> mods(n);
    std::vector<isa::Program> progs;
    progs.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        ws[i]->build(mods[i]);
        progs.push_back(compiler::compileToTrips(
            mods[i], compiler::Options::compiled()));
    }

    std::vector<MemImage> soloMem(n);
    std::vector<uarch::UarchResult> solo(n);
    for (size_t i = 0; i < n; ++i) {
        wir::Interp::loadGlobals(mods[i], soloMem[i]);
        uarch::CycleSim sim(progs[i], soloMem[i], ccfg.core);
        solo[i] = sim.run();
    }

    std::vector<MemImage> chipMem(n);
    std::vector<uarch::ChipJob> jobs(n);
    for (size_t i = 0; i < n; ++i) {
        wir::Interp::loadGlobals(mods[i], chipMem[i]);
        jobs[i] = {&progs[i], &chipMem[i]};
    }
    uarch::ChipSim chip(jobs, ccfg);

    // --trace-dir: record the chip run (per-core block spans + memory
    // instants, quantum barriers under --parallel) into one Chrome
    // trace-event JSON named after the mix. Attaching never changes
    // results, so the mix-vs-solo oracle below still holds.
    obs::TraceSink sink;
    std::string mixName = ws[0]->name;
    for (size_t i = 1; i < n; ++i)
        mixName += "+" + ws[i]->name;
    std::unique_ptr<obs::ChipObs> obsb;
    if (!a.traceDir.empty()) {
        obsb = std::make_unique<obs::ChipObs>(
            static_cast<unsigned>(n), &sink, /*metrics=*/false,
            /*sample_period=*/0, /*stalls=*/false);
        for (size_t i = 0; i < n; ++i)
            sink.setProcessName(static_cast<u32>(i),
                                "core " + std::to_string(i) + " " +
                                    ws[i]->name);
        chip.attachObs(*obsb);
    }

    auto cr = chip.run();

    if (!a.traceDir.empty()) {
        std::error_code ec;
        fs::create_directories(a.traceDir, ec);
        std::string path = a.traceDir + "/" + mixName + ".json";
        if (!sink.writeFile(path))
            std::fprintf(stderr, "cannot write trace %s\n", path.c_str());
    }

    rep.chipCycles = cr.cycles;
    rep.bankConflicts = cr.uncore.bankConflicts;
    if (print) {
        std::printf("%-10s %12s %12s %9s %10s %10s\n", "core",
                    "solo cyc", "mix cyc", "slowdown", "soloL2mr%",
                    "mixL2mr%");
    }
    for (size_t i = 0; i < n; ++i) {
        const auto &u = cr.cores[i];
        if (u.fuelExhausted || u.retVal != solo[i].retVal) {
            rep.ok = false;
            if (rep.detail.empty())
                rep.detail = ws[i]->name + ": chip retVal diverges";
        }
        std::string memdiff = harness::compareDataSegments(
            mods[i], soloMem[i], chipMem[i], ws[i]->name.c_str());
        if (!memdiff.empty()) {
            rep.ok = false;
            if (rep.detail.empty())
                rep.detail = memdiff;
        }
        double slow = static_cast<double>(u.cycles) / solo[i].cycles;
        double infl = l2MissPct(u) - l2MissPct(solo[i]);
        rep.maxSlowdown = std::max(rep.maxSlowdown, slow);
        rep.maxMissInflation = std::max(rep.maxMissInflation, infl);
        if (print) {
            std::printf("%-10s %12llu %12llu %8.3fx %9.2f%% %9.2f%%\n",
                        ws[i]->name.c_str(),
                        (unsigned long long)solo[i].cycles,
                        (unsigned long long)u.cycles, slow,
                        l2MissPct(solo[i]), l2MissPct(u));
        }
    }
    if (print) {
        std::printf("bank conflicts %llu (%llu stall cycles), "
                    "OCN occupancy %.4f, %llu dirty L2 lines drained\n",
                    (unsigned long long)cr.uncore.bankConflicts,
                    (unsigned long long)cr.uncore.bankConflictCycles,
                    cr.ocnOccupancy,
                    (unsigned long long)cr.l2DirtyDrained);
    }
    return rep;
}

/** One machine-readable summary line for --json chip runs, carrying
 *  the full stepping configuration so sweep records are replayable. */
void
printChipJson(const Args &a, unsigned cores, size_t mixes, bool ok,
              u64 cycles, u64 conflicts, double wallMs)
{
    std::cout << "{\"mixes\": " << mixes << ", \"cores\": " << cores
              << ", \"engine\": \""
              << uarch::chipEngineName(chipConfig(a, cores).engine)
              << "\", \"quantum\": " << a.quantum
              << ", \"threads\": " << a.threads
              << ", \"chip_cycles\": " << cycles
              << ", \"bank_conflicts\": " << conflicts
              << ", \"wall_ms\": " << wallMs
              << ", \"ok\": " << (ok ? "true" : "false") << "}\n";
}

int
runMix(const Args &a)
{
    std::vector<const workloads::Workload *> ws;
    std::string cur;
    for (char ch : a.mix + ",") {
        if (ch == ',') {
            if (!cur.empty())
                ws.push_back(&workloads::find(cur));
            cur.clear();
        } else {
            cur += ch;
        }
    }
    if (ws.empty() || ws.size() > net::OcnModel::MAX_CORES) {
        std::cerr << "--mix needs 1..16 workload names\n";
        return 2;
    }
    if (a.cores > net::OcnModel::MAX_CORES) {
        std::cerr << "--cores is capped at 16 (the OCN attach table)\n";
        return 2;
    }
    // Fewer names than --cores: fill the remaining cores round-robin
    // from the start of the list (so `--cores 4 --mix a,b` runs
    // a,b,a,b).
    if (a.cores > ws.size()) {
        size_t given = ws.size();
        while (ws.size() < a.cores)
            ws.push_back(ws[ws.size() % given]);
    }
    if (ws.size() < 2) {
        std::cerr << "--mix needs at least 2 cores (names or --cores)\n";
        return 2;
    }
    auto t0 = Clock::now();
    MixReport rep = runOneMix(ws, a, /*print=*/!a.json);
    double wallMs = msSince(t0);
    std::ostream &human = a.json ? std::cerr : std::cout;
    if (!rep.ok)
        human << "ARCHITECTURAL DIVERGENCE: " << rep.detail << "\n";
    else
        human << "chip cores match their solo runs\n";
    if (a.json)
        printChipJson(a, static_cast<unsigned>(ws.size()), 1, rep.ok,
                      rep.chipCycles, rep.bankConflicts, wallMs);
    return rep.ok ? 0 : 1;
}

int
runMixSuite(const Args &a)
{
    // Group the registry in order into --cores-sized mixes: (0..n-1),
    // (n..2n-1), ...; a short tail is filled round-robin from the
    // start of the registry (generalizing the historical odd-tail
    // pairing with the first workload).
    const unsigned n = a.cores ? a.cores : 2;
    if (n < 2 || n > net::OcnModel::MAX_CORES) {
        std::cerr << "--mix-suite needs --cores 2..16\n";
        return 2;
    }
    const auto &all = workloads::all();
    std::vector<std::vector<const workloads::Workload *>> mixes;
    for (size_t i = 0; i < all.size(); i += n) {
        std::vector<const workloads::Workload *> mix;
        for (size_t k = 0; k < n; ++k)
            mix.push_back(&all[(i + k) % all.size()]);
        mixes.push_back(std::move(mix));
    }

    std::vector<MixReport> reps(mixes.size());
    harness::SweepPool pool(a.jobs);
    auto t0 = Clock::now();
    obs::ProgressMeter prog(mixes.size(), a.progress);
    pool.parallelFor(mixes.size(), [&](u64 i) {
        reps[i] = runOneMix(mixes[i], a, /*print=*/false);
        prog.tick();
    });
    prog.finish();
    double wallMs = msSince(t0);

    std::ostream &human = a.json ? std::cerr : std::cout;
    bool ok = true;
    unsigned contended = 0;
    u64 cycles = 0, conflicts = 0;
    for (size_t i = 0; i < mixes.size(); ++i) {
        const auto &rep = reps[i];
        ok &= rep.ok;
        cycles += rep.chipCycles;
        conflicts += rep.bankConflicts;
        if (rep.bankConflicts > 0 || rep.maxMissInflation > 0)
            ++contended;
        std::string names = mixes[i][0]->name;
        for (size_t k = 1; k < mixes[i].size(); ++k)
            names += "+" + mixes[i][k]->name;
        char line[256];
        std::snprintf(line, sizeof line,
                      "%-44s %10llu cyc  slowdown %6.3fx  "
                      "conflicts %6llu  missInfl %+6.2fpp%s",
                      names.c_str(),
                      (unsigned long long)rep.chipCycles, rep.maxSlowdown,
                      (unsigned long long)rep.bankConflicts,
                      rep.maxMissInflation,
                      rep.ok ? "" : "  <-- DIVERGES");
        human << line << "\n";
        if (!rep.ok)
            human << "    " << rep.detail << "\n";
    }
    char tail[256];
    std::snprintf(tail, sizeof tail,
                  "%zu %u-core [%s] mixes over %zu workloads in %.0f ms; "
                  "%u mixes show shared-L2/OCN contention",
                  mixes.size(), n,
                  uarch::chipEngineName(chipConfig(a, n).engine),
                  all.size(), wallMs, contended);
    human << tail << "\n"
          << (ok ? "all chip cores match their solo runs"
                 : "ARCHITECTURAL DIVERGENCES FOUND")
          << "\n";
    if (a.json)
        printChipJson(a, n, mixes.size(), ok, cycles, conflicts, wallMs);
    return ok ? 0 : 1;
}

int
runChipFuzz(const Args &a)
{
    harness::ShapeConfig shape = a.shape();
    harness::DiffOptions opts;
    opts.verifyTil = a.verifyTil;
    opts.engine = a.engine;
    opts.chipCores = a.cores ? a.cores : 2;
    opts.chipEngine = chipConfig(a, opts.chipCores).engine;
    opts.chipQuantum = a.quantum;
    opts.chipThreads = a.threads;
    harness::SweepPool pool(a.jobs);

    auto t0 = Clock::now();
    obs::ProgressMeter prog(a.fuzzCount, a.progress);
    auto bad = harness::sweepChipDiff(pool, a.seed, a.fuzzCount, shape,
                                      opts, &prog);
    prog.finish();
    double wallMs = msSince(t0);

    std::cout << "chip-fuzzed " << a.fuzzCount << " mixes of "
              << opts.chipCores << " programs ["
              << uarch::chipEngineName(opts.chipEngine) << ", "
              << shape.describe() << "] on " << pool.jobs()
              << " worker(s) in " << wallMs << " ms\n";
    for (const auto &r : bad) {
        std::cout << "DIVERGENCE seeds=(";
        if (r.chipSeeds.empty()) {
            std::cout << r.seed << "," << r.seedB;
        } else {
            for (size_t i = 0; i < r.chipSeeds.size(); ++i)
                std::cout << (i ? "," : "") << r.chipSeeds[i];
        }
        std::cout << ") [" << r.shape.describe() << "]\n  "
                  << r.divergence << "\n  repro: " << r.reproCmd()
                  << "\n";
    }
    if (!a.outFile.empty() && !bad.empty()) {
        std::ofstream out(a.outFile);
        for (const auto &r : bad)
            out << r.reproCmd() << "  # " << r.divergence << "\n";
    }
    std::cout << (bad.empty() ? "all chip cores match their solo runs\n"
                              : "DIVERGENCES FOUND\n");
    return bad.empty() ? 0 : 1;
}

int
runChipRepro(const Args &a)
{
    harness::ShapeConfig shape = a.shape();
    std::vector<u64> seeds =
        a.seeds.empty() ? std::vector<u64>{a.reproSeed, a.seed2}
                        : a.seeds;
    harness::DiffOptions opts;
    opts.verifyTil = a.verifyTil;
    opts.engine = a.engine;
    opts.chipEngine = chipConfig(a, 0).engine;
    opts.chipQuantum = a.quantum;
    opts.chipThreads = a.threads;
    std::cout << "chip mix seeds=(";
    for (size_t i = 0; i < seeds.size(); ++i)
        std::cout << (i ? "," : "") << seeds[i];
    std::cout << ") [" << uarch::chipEngineName(opts.chipEngine) << ", "
              << shape.describe() << "]\n";
    auto r = harness::diffChipMix(seeds, shape, opts);
    std::cout << (r.ok ? "oracle: ok ("
                             + std::to_string(r.cycles)
                             + " chip cycles)\n"
                       : "oracle: " + r.divergence + "\n");
    return r.ok ? 0 : 1;
}

// ---------------------------------------------------------------------
// --repro: one seed, verbosely.
// ---------------------------------------------------------------------

int
runRepro(const Args &a)
{
    harness::ShapeConfig shape = a.shape();
    std::cout << "seed " << a.reproSeed << " [" << shape.describe()
              << "]\n";
    wir::Module mod = harness::generate(a.reproSeed, shape);

    MemImage goldenMem;
    auto golden = core::runGolden(mod, &goldenMem);
    std::cout << "golden      retVal=" << golden.retVal
              << " dynOps=" << golden.dynOps << " loads=" << golden.loads
              << " stores=" << golden.stores << "\n";

    auto riscLine = [&](const char *name, const risc::RiscOptions &o) {
        MemImage m;
        auto r = core::runRisc(mod, o, &m);
        std::cout << name << " retVal=" << r.retVal << " insts="
                  << r.counters.insts
                  << (r.retVal == golden.retVal ? "" : "  <-- DIVERGES")
                  << harness::compareDataSegments(mod, goldenMem, m, " mem:")
                  << "\n";
    };
    riscLine("risc/gcc   ", risc::RiscOptions::gcc());
    riscLine("risc/icc   ", risc::RiscOptions::icc());

    auto tripsLine = [&](const char *name, compiler::Options o,
                         bool cycle, bool debug) {
        o.verifyTil = a.verifyTil;
        if (debug && a.dumpTil)
            o.tilDump = &std::cout;
        MemImage fm, cm;
        auto r = core::runTrips(mod, o, cycle, uarch::UarchConfig{}, &fm,
                                &cm, a.engine);
        std::cout << name << " retVal=" << r.retVal
                  << " blocks=" << r.isa.blocks << " fired=" << r.isa.fired
                  << (r.retVal == golden.retVal ? "" : "  <-- DIVERGES")
                  << harness::compareDataSegments(mod, goldenMem, fm,
                                                  " mem:")
                  << "\n";
        if (debug && a.compileStats) {
            const auto &cs = r.compile;
            std::cout << "  compile: functions=" << cs.functions
                      << " regions=" << cs.regions << " blocks="
                      << cs.blocks << " insts=" << cs.totalInsts
                      << " movs=" << cs.movInsts << " nulls="
                      << cs.nullInsts << " tests=" << cs.testInsts
                      << "\n  split: +" << cs.splitBlocks
                      << " blocks, " << cs.spillWrites
                      << " spill writes, " << cs.spillReads
                      << " spill reads, " << cs.overflowRetries
                      << " region retries\n";
            for (unsigned p = 0; p < compiler::NUM_PASSES; ++p) {
                const auto &pc = cs.pass[p];
                std::cout << "  pass " << std::left << std::setw(12)
                          << compiler::passName(
                                 static_cast<compiler::PassId>(p))
                          << std::right << " blocks=" << pc.tilBlocks
                          << " nodes=" << pc.tilNodes << " (+"
                          << pc.addedNodes << ") movs=" << pc.movNodes
                          << " nulls=" << pc.nullNodes << " tests="
                          << pc.testNodes << "\n";
            }
        }
        if (cycle) {
            std::cout << "trips/cycle retVal=" << r.uarch.retVal
                      << " cycles=" << r.uarch.cycles
                      << " ipc=" << r.uarch.ipc()
                      << " flushes=" << r.uarch.blocksFlushed
                      << (r.uarch.retVal == golden.retVal
                              ? "" : "  <-- DIVERGES")
                      << harness::compareDataSegments(mod, goldenMem, cm,
                                                      " mem:")
                      << "\n";
        }
    };
    tripsLine("trips/func ", compiler::Options::compiled(), a.cycleLevel,
              true);
    tripsLine("trips/hand ", compiler::Options::hand(), false, false);

    harness::DiffOptions opts;
    opts.cycleLevel = a.cycleLevel;
    opts.verifyTil = a.verifyTil;
    opts.engine = a.engine;
    auto full = harness::diffOne(a.reproSeed, shape, opts);
    std::cout << (full.ok ? "oracle: ok\n"
                          : "oracle: " + full.divergence + "\n");

    bool ckptOk = true;
    if (a.ckptEvery) {
        auto cr = harness::diffCheckpointRestore(
            mod, a.ckptEvery, compiler::Options::compiled());
        ckptOk = cr.ok;
        std::cout << "ckpt oracle (every " << a.ckptEvery << " blocks): "
                  << (cr.ok ? "ok (" + std::to_string(cr.checkpoints)
                                  + " checkpoints over "
                                  + std::to_string(cr.totalBlocks)
                                  + " blocks)"
                            : cr.divergence)
                  << "\n";
    }
    return full.ok && ckptOk ? 0 : 1;
}

// ---------------------------------------------------------------------
// --sampled: the sampled-vs-full accuracy gate.
// ---------------------------------------------------------------------

int
runSampledGate(const Args &a)
{
    std::vector<const workloads::Workload *> ws;
    std::string cur;
    for (char ch : a.sampledList + ",") {
        if (ch == ',') {
            if (!cur.empty())
                ws.push_back(&workloads::find(cur));
            cur.clear();
        } else {
            cur += ch;
        }
    }
    if (ws.empty()) {
        std::cerr << "--sampled needs at least one workload name\n";
        return 2;
    }
    sim::SampleConfig scfg;
    scfg.warmupBlocks = 150;
    scfg.measureBlocks = 350;
    scfg.period = 1000;
    if (!a.sampleSpec.empty())
        scfg = sim::SampleConfig::parse(a.sampleSpec);
    scfg.maxCpbSpread = a.sampleSpread;

    std::printf("sampling schedule: %s, tolerance %.1f%%\n",
                scfg.describe().c_str(), a.sampleTol);
    std::printf("%-12s %12s %12s %8s %5s %9s %9s\n", "workload",
                "full cyc", "sampled cyc", "err%", "ivls", "coverage",
                "speedup");
    bool ok = true;
    for (const auto *w : ws) {
        wir::Module mod;
        w->build(mod);
        auto prog =
            compiler::compileToTrips(mod, compiler::Options::compiled());

        auto f0 = Clock::now();
        MemImage fullMem;
        wir::Interp::loadGlobals(mod, fullMem);
        uarch::CycleSim cs(prog, fullMem);
        auto full = cs.run();
        double fullMs = msSince(f0);

        auto s0 = Clock::now();
        MemImage sMem;
        wir::Interp::loadGlobals(mod, sMem);
        auto s = sim::runSampled(prog, sMem, uarch::UarchConfig{}, scfg);
        double sampledMs = msSince(s0);

        double err = full.cycles
            ? (s.estCycles - static_cast<double>(full.cycles)) * 100.0 /
                  static_cast<double>(full.cycles)
            : 0.0;
        bool pass = std::abs(err) <= a.sampleTol &&
                    s.retVal == full.retVal && !s.fuelExhausted;
        ok &= pass;
        std::printf(
            "%-12s %12llu %12.0f %+7.2f%% %5u %8.1f%% %8.2fx%s%s\n",
            w->name.c_str(), (unsigned long long)full.cycles,
            s.estCycles, err, s.intervals, s.coverage() * 100.0,
            sampledMs > 0 ? fullMs / sampledMs : 0.0,
            s.toleranceFallback ? "  [spread>tol: full detail]" : "",
            pass ? "" : "  <-- FAIL");
    }
    std::printf("%s\n", ok ? "sampled estimates within tolerance"
                           : "SAMPLED ESTIMATES OUT OF TOLERANCE");
    return ok ? 0 : 1;
}

// ---------------------------------------------------------------------
// --cache-fsck: repair a campaign cache after a mid-sweep kill.
// ---------------------------------------------------------------------

int
runCacheFsck(const Args &a)
{
    sim::CampaignCache cache(a.cacheDir);
    sim::FsckReport rep = cache.fsck();
    std::cout << rep.str() << " dir=" << a.cacheDir << "\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args a = parse(argc, argv);
    if (a.faultInject) {
        // Deterministic I/O fault plan over every checkpoint/cache
        // file operation this process performs. The stats line lands
        // on stderr at exit so gates can assert injection really ran.
        sim::faultio::FaultPlan plan;
        plan.seed = a.faultSeed;
        plan.period = a.faultPeriod;
        sim::faultio::install(plan);
    }
    int rc;
    if (a.cacheFsck)
        rc = runCacheFsck(a);
    else if (a.mixSuite)
        rc = runMixSuite(a);
    else if (!a.mix.empty())
        rc = runMix(a);
    else if (a.chip && a.repro)
        rc = runChipRepro(a);
    else if (a.chip && a.fuzzCount)
        rc = runChipFuzz(a);
    else if (a.repro)
        rc = runRepro(a);
    else if (!a.sampledList.empty())
        rc = runSampledGate(a);
    else if (a.fuzzCount)
        rc = runFuzz(a);
    else
        rc = runFigures(a);
    if (a.faultInject)
        std::cerr << sim::faultio::stats().describe() << "\n";
    return rc;
}
