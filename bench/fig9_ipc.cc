/** Fig. 9: sustained IPC on the TRIPS cycle-level model. */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Figure 9: IPC (compiled C and hand H)",
                  "regular kernels reach 6-10 IPC; serial codes ~1; "
                  "hand codes ~50% above compiled; SPEC lower");
    TextTable t;
    t.header({"bench", "IPC(executed)", "IPC(useful)", "cycles"});
    auto emit = [&](const std::string &n, const core::TripsRun &r) {
        double useful_frac = r.isa.fetched
            ? static_cast<double>(r.isa.useful) / r.isa.fetched : 0;
        double ipc = r.uarch.ipc();
        double fired_frac = r.uarch.instsFetched
            ? static_cast<double>(r.uarch.instsFired) /
              r.uarch.instsFetched : 0;
        (void)fired_frac;
        t.row({n, TextTable::fmt(ipc, 2),
               TextTable::fmt(r.uarch.instsFetched * useful_frac /
                              std::max<u64>(1, r.uarch.cycles), 2),
               TextTable::fmtInt(r.uarch.cycles)});
        return ipc;
    };
    std::vector<double> c_ipc, h_ipc;
    for (auto *w : bench::figureOrderSimple()) {
        auto c = bench::runTrips(*w, compiler::Options::compiled(), true);
        c_ipc.push_back(emit(w->name + " C", c));
        auto h = bench::runTrips(*w, compiler::Options::hand(), true);
        h_ipc.push_back(emit(w->name + " H", h));
    }
    t.rule();
    for (const char *s : {"specint", "specfp"}) {
        std::vector<double> ii;
        for (auto *w : workloads::suite(s)) {
            auto c = bench::runTrips(*w, compiler::Options::compiled(),
                                    true);
            ii.push_back(emit(w->name, c));
        }
        t.row({std::string(s) + " mean", TextTable::fmt(amean(ii), 2),
               "-", "-"});
    }
    t.print(std::cout);
    std::cout << "\nSimple-suite mean IPC: C="
              << TextTable::fmt(amean(c_ipc), 2)
              << " H=" << TextTable::fmt(amean(h_ipc), 2)
              << "  (paper: hand ~50% higher than compiled)\n";
    return 0;
}
