/** Fig. 7: next-block prediction study (configs A, B, H, I). */
#include "bench_util.hh"
#include "pred/predictors.hh"
using namespace trips;

namespace {

/** Replays committed blocks into a TRIPS next-block predictor. */
class NbpObserver : public sim::BlockObserver {
  public:
    explicit NbpObserver(const pred::NextBlockConfig &cfg) : nbp(cfg) {}
    void onBlockCommit(const isa::Block &b,
                       const sim::BlockRecord &rec) override {
        if (rec.halts)
            return;
        const auto &br = b.insts[rec.branchInst];
        pred::BranchKind kind =
            rec.isCall ? pred::BranchKind::Call
          : rec.isRet ? pred::BranchKind::Ret : pred::BranchKind::Branch;
        u32 push = rec.isCall ? static_cast<u32>(br.returnBlock) : 0;
        nbp.update(rec.blockIdx, rec.exitTaken, rec.nextBlock, kind,
                   push);
    }
    pred::NextBlockPredictor nbp;
};

/** Alpha-21264-style per-branch predictor replay (config A). */
class AlphaObserver : public sim::BlockObserver {
  public:
    void onBlockCommit(const isa::Block &b,
                       const sim::BlockRecord &rec) override {
        if (rec.halts)
            return;
        ++predictions;
        // Direction: exit 0 = "taken" arm by convention.
        bool taken = rec.exitTaken == 0;
        bool dir = tp.predict(rec.blockIdx);
        tp.update(rec.blockIdx, taken);
        u32 tgt;
        u64 key = (static_cast<u64>(rec.blockIdx) << 3) | rec.exitTaken;
        bool tgt_ok = btb.lookup(key, tgt) && tgt == rec.nextBlock;
        if (rec.isRet) {
            u32 v;
            tgt_ok = ras.pop(v) && v == rec.nextBlock;
        }
        if (rec.isCall) {
            const auto &br = b.insts[rec.branchInst];
            ras.push(static_cast<u32>(br.returnBlock));
        }
        btb.update(key, rec.nextBlock);
        if (dir != taken || !tgt_ok)
            ++mispredictions;
    }
    pred::TournamentPredictor tp;
    pred::SimpleBtb btb{1024};
    pred::ReturnStack ras{16};
    u64 predictions = 0, mispredictions = 0;
};

} // namespace

int main() {
    bench::header("Figure 7: prediction breakdown A/B/H/I",
                  "SPEC INT MPKI: A=14.9 B=14.8 H=8.5 I=6.9; "
                  "FP: 0.9/1.3/1.1/0.8; hyperblocks make ~70% fewer "
                  "predictions on INT");
    TextTable t;
    t.header({"suite", "cfg", "preds", "mispreds", "missRate",
              "MPKI(useful)"});
    for (const char *s : {"specint", "specfp", "eembc"}) {
        double a_p = 0, a_m = 0, b_p = 0, b_m = 0, h_p = 0, h_m = 0,
               i_p = 0, i_m = 0, useful_bb = 0, useful_hb = 0;
        for (auto *w : workloads::suite(s)) {
            // Basic-block code: configs A and B.
            AlphaObserver a;
            NbpObserver bb(pred::NextBlockConfig::prototype());
            auto rb = core::runTripsObserved(
                *w, compiler::Options::basicBlock(), {&a, &bb});
            a_p += a.predictions;
            a_m += a.mispredictions;
            b_p += bb.nbp.stats().predictions;
            b_m += bb.nbp.stats().mispredictions;
            useful_bb += rb.isa.useful;
            // Hyperblock code: configs H and I.
            NbpObserver h(pred::NextBlockConfig::prototype());
            NbpObserver imp(pred::NextBlockConfig::improved());
            auto rh = core::runTripsObserved(
                *w, compiler::Options::compiled(), {&h, &imp});
            h_p += h.nbp.stats().predictions;
            h_m += h.nbp.stats().mispredictions;
            i_p += imp.nbp.stats().predictions;
            i_m += imp.nbp.stats().mispredictions;
            useful_hb += rh.isa.useful;
        }
        auto emit = [&](const char *cfg, double p, double m,
                        double useful) {
            t.row({s, cfg, TextTable::fmtInt(static_cast<u64>(p)),
                   TextTable::fmtInt(static_cast<u64>(m)),
                   TextTable::pct(p ? m / p : 0),
                   TextTable::fmt(useful ? 1000.0 * m / useful : 0, 2)});
        };
        emit("A (alpha, bb)", a_p, a_m, useful_bb);
        emit("B (trips, bb)", b_p, b_m, useful_bb);
        emit("H (trips, hyper)", h_p, h_m, useful_hb);
        emit("I (improved)", i_p, i_m, useful_hb);
        std::cout.flush();
        t.rule();
    }
    t.print(std::cout);
    std::cout << "\nShape checks: hyperblocks make fewer predictions "
                 "than basic blocks; I <= H MPKI.\n";
    return 0;
}
