#!/usr/bin/env bash
# Measure the parallel sweep engine (bench/sweep_main) and record the
# results under the "sweep" key of BENCH_simspeed.json:
#   - the figure-matrix wall clock serial (--jobs 1) vs all cores,
#   - the differential-fuzz throughput (programs/s, all cores).
#
# Usage: bench/run_sweep.sh [build-dir] [fuzz-count]
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
fuzz_count="${2:-1000}"

sweep_bin="$build_dir/sweep_main"
if [[ ! -x "$sweep_bin" ]]; then
    echo "error: $sweep_bin not found; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

serial_json="$("$sweep_bin" --figures --json --jobs 1)"
parallel_json="$("$sweep_bin" --figures --json --jobs 0)"
fuzz_json="$("$sweep_bin" --fuzz "$fuzz_count" --seed 1 --json)"

python3 - "$repo_root/BENCH_simspeed.json" \
    "$serial_json" "$parallel_json" "$fuzz_json" <<'EOF'
import json, os, sys

path = sys.argv[1]
serial = json.loads(sys.argv[2])
parallel = json.loads(sys.argv[3])
fuzz = json.loads(sys.argv[4])

out = json.load(open(path))
out["sweep"] = {
    "description": "bench/sweep_main parallel sweep engine; regenerate "
                   "with bench/run_sweep.sh",
    "host_cpus": os.cpu_count(),
    "note": "speedup is bounded by host_cpus; a single-core host "
            "can only show ~1.0x",
    "figure_matrix": {
        "tasks": serial["tasks"],
        "serial_wall_ms": serial["wall_ms"],
        "parallel_jobs": parallel["jobs"],
        "parallel_wall_ms": parallel["wall_ms"],
        "speedup": serial["wall_ms"] / parallel["wall_ms"],
    },
    "fuzz": fuzz,
}
json.dump(out, open(path, "w"), indent=2)
print(json.dumps(out["sweep"], indent=2))
print("wrote", path)
EOF
