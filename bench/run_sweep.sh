#!/usr/bin/env bash
# Measure the parallel sweep engine (bench/sweep_main) and record the
# results under the "sweep" key of BENCH_simspeed.json:
#   - the figure-matrix wall clock serial (--jobs 1) vs --jobs N,
#   - the differential-fuzz throughput (programs/s, --jobs N).
#
# Usage: bench/run_sweep.sh [build-dir] [fuzz-count] [jobs]
#
# `jobs` defaults to the host's CPU count and is recorded in the JSON,
# so single-core dev-container numbers are labeled as such and CI
# multicore numbers are comparable across hosts.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
fuzz_count="${2:-1000}"
jobs="${3:-$(nproc)}"

sweep_bin="$build_dir/sweep_main"
if [[ ! -x "$sweep_bin" ]]; then
    echo "error: $sweep_bin not found; build first:" >&2
    echo "  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

serial_json="$("$sweep_bin" --figures --json --jobs 1)"
parallel_json="$("$sweep_bin" --figures --json --jobs "$jobs")"
fuzz_json="$("$sweep_bin" --fuzz "$fuzz_count" --seed 1 --json \
             --jobs "$jobs")"

python3 - "$repo_root/BENCH_simspeed.json" "$jobs" \
    "$serial_json" "$parallel_json" "$fuzz_json" <<'EOF'
import json, os, sys

path = sys.argv[1]
jobs = int(sys.argv[2])
serial = json.loads(sys.argv[3])
parallel = json.loads(sys.argv[4])
fuzz = json.loads(sys.argv[5])

out = json.load(open(path))
out["sweep"] = {
    "description": "bench/sweep_main parallel sweep engine; regenerate "
                   "with bench/run_sweep.sh [build-dir] [fuzz-count] "
                   "[jobs]",
    "host_cpus": os.cpu_count(),
    "jobs": jobs,
    "note": "speedup is bounded by jobs (<= host_cpus); a single-core "
            "host can only show ~1.0x",
    "figure_matrix": {
        "tasks": serial["tasks"],
        "serial_wall_ms": serial["wall_ms"],
        "parallel_jobs": parallel["jobs"],
        "parallel_wall_ms": parallel["wall_ms"],
        "speedup": serial["wall_ms"] / parallel["wall_ms"],
    },
    "fuzz": fuzz,
}
json.dump(out, open(path, "w"), indent=2)
print(json.dumps(out["sweep"], indent=2))
print("wrote", path)
EOF
