/** Table 1: reference platform configurations. */
#include "bench_util.hh"
using namespace trips;
int main() {
    bench::header("Table 1: Reference platforms",
                  "processor/memory speeds and cache capacities");
    TextTable t;
    t.header({"System", "Proc", "Mem", "Ratio", "L1 D/I", "L2", "Model"});
    t.row({"TRIPS", "366 MHz", "200 MHz", "1.83", "32KB / 80KB", "1MB",
           "cycle-level tiled simulator (src/uarch)"});
    auto c2 = ooo::OooConfig::core2();
    auto p4 = ooo::OooConfig::pentium4();
    auto p3 = ooo::OooConfig::pentium3();
    auto row = [&](const char *n, const char *pr, const char *me,
                   const char *ra, const ooo::OooConfig &c) {
        t.row({n, pr, me, ra,
               TextTable::fmtInt(c.l1d.sizeBytes / 1024) + "KB / " +
                   TextTable::fmtInt(c.l1i.sizeBytes / 1024) + "KB",
               TextTable::fmtInt(c.l2.sizeBytes / (1024 * 1024)) + "MB",
               "OoO model: " + TextTable::fmtInt(c.issueWidth) +
                   "-wide, ROB " + TextTable::fmtInt(c.robSize) +
                   ", mem " + TextTable::fmtInt(c.memLatency) + "cy"});
    };
    row("Core 2", "1600 MHz", "800 MHz", "2.00", c2);
    row("Pentium 4", "3600 MHz", "533 MHz", "6.75", p4);
    row("Pentium III", "450 MHz", "100 MHz", "4.50", p3);
    t.print(std::cout);
    return 0;
}
