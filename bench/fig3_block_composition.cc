/** Fig. 3: TRIPS block size and composition, compiled (C) vs hand (H). */
#include "bench_util.hh"
using namespace trips;

static void row(TextTable &t, const std::string &name,
                const core::TripsRun &r) {
    const auto &s = r.isa;
    double blocks = static_cast<double>(s.blocks);
    auto per = [&](u64 v) { return TextTable::fmt(v / blocks, 1); };
    t.row({name, per(s.fetched),
           per(s.usefulMemory), per(s.usefulControl),
           per(s.usefulArith), per(s.usefulTests), per(s.moves),
           per(s.fetchedNotExecuted), per(s.executedNotUsed)});
}

int main() {
    bench::header("Figure 3: TRIPS block size and composition",
                  "compiled avg ~64 insts/block (range 30-110+); moves "
                  "~20%; mispredicated insts up to half for a2time");
    TextTable t;
    t.header({"bench", "block", "mem", "ctl", "arith", "test", "moves",
              "fetchNotExec", "execNotUsed"});
    std::vector<double> sizes_c, sizes_h;
    for (auto *w : bench::figureOrderSimple()) {
        auto c = bench::runTrips(*w, compiler::Options::compiled(), false);
        row(t, w->name + " C", c);
        sizes_c.push_back(c.isa.meanBlockSize());
        auto h = bench::runTrips(*w, compiler::Options::hand(), false);
        row(t, w->name + " H", h);
        sizes_h.push_back(h.isa.meanBlockSize());
    }
    t.rule();
    for (const char *s : {"eembc", "specint", "specfp"}) {
        std::vector<double> sz;
        sim::IsaStats agg;
        for (auto *w : workloads::suite(s)) {
            auto c = bench::runTrips(*w, compiler::Options::compiled(),
                                    false);
            sz.push_back(c.isa.meanBlockSize());
        }
        t.row({std::string(s) + " mean blocksize", TextTable::fmt(amean(sz), 1),
               "-", "-", "-", "-", "-", "-", "-"});
    }
    t.print(std::cout);
    std::cout << "\nSimple-suite mean block size: C="
              << TextTable::fmt(amean(sizes_c), 1)
              << " H=" << TextTable::fmt(amean(sizes_h), 1)
              << "  (paper: hand optimization grows blocks; max 128)\n";
    return 0;
}
