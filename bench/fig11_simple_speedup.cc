/** Fig. 11: simple-benchmark speedups relative to Core 2 (gcc). */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Figure 11: simple benchmarks, speedup vs Core2-gcc",
                  "TRIPS compiled ~1.5x Core 2; TRIPS hand ~2.9x; "
                  "P3/P4 below Core 2");
    TextTable t;
    t.header({"bench", "P3-gcc", "P4-gcc", "Core2-icc", "TRIPS-C",
              "TRIPS-H"});
    std::vector<double> tc, th, p3s, p4s, icc;
    for (auto *w : bench::figureOrderSimple()) {
        auto g = risc::RiscOptions::gcc();
        auto base = core::runPlatform(*w, ooo::OooConfig::core2(), g);
        double b = static_cast<double>(base.cycles);
        auto p3 = core::runPlatform(*w, ooo::OooConfig::pentium3(), g);
        auto p4 = core::runPlatform(*w, ooo::OooConfig::pentium4(), g);
        auto c2i = core::runPlatform(*w, ooo::OooConfig::core2(),
                                     risc::RiscOptions::icc());
        auto rc = bench::runTrips(*w, compiler::Options::compiled(), true);
        auto rh = bench::runTrips(*w, compiler::Options::hand(), true);
        double s3 = b / p3.cycles, s4 = b / p4.cycles,
               si = b / c2i.cycles, sc = b / rc.uarch.cycles,
               sh = b / rh.uarch.cycles;
        t.row({w->name, TextTable::fmt(s3, 2), TextTable::fmt(s4, 2),
               TextTable::fmt(si, 2), TextTable::fmt(sc, 2),
               TextTable::fmt(sh, 2)});
        p3s.push_back(s3);
        p4s.push_back(s4);
        icc.push_back(si);
        tc.push_back(sc);
        th.push_back(sh);
    }
    t.rule();
    t.row({"geomean", TextTable::fmt(geomean(p3s), 2),
           TextTable::fmt(geomean(p4s), 2), TextTable::fmt(geomean(icc), 2),
           TextTable::fmt(geomean(tc), 2), TextTable::fmt(geomean(th), 2)});
    t.print(std::cout);
    std::cout << "\nShape checks: TRIPS-H > TRIPS-C > 1 > P4, P3 on most "
                 "benchmarks (paper: 2.9x / 1.5x geomean).\n";
    return 0;
}
