/** Fig. 4: TRIPS fetched instructions normalized to the RISC baseline. */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Figure 4: TRIPS instructions normalized to PowerPC",
                  "useful counts similar; total fetched 2-6x due to "
                  "predication, moves and speculation");
    TextTable t;
    t.header({"bench", "ppcInsts", "useful/ppc", "moves/ppc",
              "execNotUsed/ppc", "fetchNotExec/ppc", "total/ppc"});
    auto emit = [&](const std::string &name, const sim::IsaStats &s,
                    u64 ppc) {
        double d = static_cast<double>(ppc);
        t.row({name, TextTable::fmtInt(ppc),
               TextTable::fmt(s.useful / d, 2),
               TextTable::fmt(s.moves / d, 2),
               TextTable::fmt(s.executedNotUsed / d, 2),
               TextTable::fmt(s.fetchedNotExecuted / d, 2),
               TextTable::fmt(s.fetched / d, 2)});
    };
    std::vector<double> ratios;
    for (auto *w : bench::figureOrderSimple()) {
        auto r = core::runRisc(*w);
        auto c = bench::runTrips(*w, compiler::Options::compiled(), false);
        emit(w->name + " C", c.isa, r.counters.insts);
        auto h = bench::runTrips(*w, compiler::Options::hand(), false);
        emit(w->name + " H", h.isa, r.counters.insts);
        ratios.push_back(c.isa.fetched /
                         static_cast<double>(r.counters.insts));
    }
    t.rule();
    for (const char *s : {"eembc", "specint", "specfp"}) {
        std::vector<double> rr;
        for (auto *w : workloads::suite(s)) {
            auto r = core::runRisc(*w);
            auto c = bench::runTrips(*w, compiler::Options::compiled(),
                                    false);
            rr.push_back(c.isa.fetched /
                         static_cast<double>(r.counters.insts));
        }
        t.row({std::string(s) + " geomean total/ppc", "-", "-", "-", "-",
               "-", TextTable::fmt(geomean(rr), 2)});
    }
    t.print(std::cout);
    return 0;
}
