/** Section 6: matrix-multiply FLOPS per cycle (hand-optimized). */
#include "bench_util.hh"
using namespace trips;

int main() {
    bench::header("Section 6: matmul FLOPS per cycle",
                  "TRIPS hand matmul 5.20 FPC vs Core 2 SSE 3.58 and "
                  "P4 1.87 (GotoBLAS); TRIPS ~40% above Core 2");
    const auto &w = workloads::find("matrix");
    // 40x40x40 matmul: 2 flops per inner iteration.
    double flops = 2.0 * 40 * 40 * 40;
    auto rh = bench::runTrips(w, compiler::Options::hand(), true);
    auto c2 = core::runPlatform(w, ooo::OooConfig::core2(),
                                risc::RiscOptions::icc());
    auto p4 = core::runPlatform(w, ooo::OooConfig::pentium4(),
                                risc::RiscOptions::icc());
    TextTable t;
    t.header({"machine", "cycles", "FPC", "paper"});
    t.row({"TRIPS hand", TextTable::fmtInt(rh.uarch.cycles),
           TextTable::fmt(flops / rh.uarch.cycles, 2), "5.20"});
    t.row({"Core2 (icc)", TextTable::fmtInt(c2.cycles),
           TextTable::fmt(flops / c2.cycles, 2), "3.58 (SSE)"});
    t.row({"Pentium4 (icc)", TextTable::fmtInt(p4.cycles),
           TextTable::fmt(flops / p4.cycles, 2), "1.87 (SSE)"});
    t.print(std::cout);
    std::cout << "\nNote: our scalar models omit SSE, so absolute FPC is "
                 "lower everywhere; the ordering is the claim checked.\n";
    return 0;
}
