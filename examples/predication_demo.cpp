/**
 * @file
 * Dataflow predication in action: an if/then/else compiled three ways
 * (basic blocks, predicated hyperblocks, hand preset), showing the
 * paper's Fetched-Not-Executed and Executed-Not-Used categories and
 * how if-conversion removes block boundaries.
 */

#include <iostream>

#include "core/machines.hh"
#include "wir/builder.hh"

using namespace trips;

int
main()
{
    const auto &w = workloads::find("a2time");  // the paper's example
    struct Mode { const char *name; compiler::Options opts; };
    Mode modes[] = {
        {"basic-block", compiler::Options::basicBlock()},
        {"hyperblock ", compiler::Options::compiled()},
        {"hand       ", compiler::Options::hand()},
    };
    std::cout << "a2time (nested if/then/else) under three code "
                 "generation modes:\n\n";
    for (auto &m : modes) {
        auto r = core::runTrips(w, m.opts, false);
        const auto &s = r.isa;
        std::cout << m.name << ": blocks=" << s.blocks
                  << " avgSize=" << s.meanBlockSize()
                  << " moves=" << 100.0 * s.moves / s.fetched << "%"
                  << " fetchedNotExec="
                  << 100.0 * s.fetchedNotExecuted / s.fetched << "%"
                  << " execNotUsed="
                  << 100.0 * s.executedNotUsed / s.fetched << "%\n";
    }
    std::cout << "\nPredicated modes fetch both arms (speculation): the "
                 "untaken arm's gated ops are Fetched-Not-Executed, the "
                 "speculated arithmetic whose results lose the predicate "
                 "race is Executed-Not-Used (paper Fig. 3).\n";
    return 0;
}
