/**
 * @file
 * The paper's vadd bandwidth scenario: stream two vectors through the
 * banked L1, and show how hand-style block packing (bigger unrolled
 * blocks) raises memory-level parallelism on the tiled core.
 */

#include <iostream>

#include "core/machines.hh"

using namespace trips;

int
main()
{
    const auto &w = workloads::find("vadd");
    auto c = core::runTrips(w, compiler::Options::compiled(), true);
    auto h = core::runTrips(w, compiler::Options::hand(), true);

    auto report = [](const char *name, const core::TripsRun &r) {
        double bpc = static_cast<double>(r.uarch.bytesL1) /
                     std::max<u64>(1, r.uarch.cycles);
        std::cout << name << ": cycles=" << r.uarch.cycles
                  << " blockSize=" << r.isa.meanBlockSize()
                  << " L1 bytes/cycle=" << bpc
                  << " (peak 32 B/cycle = 4 banks x 8B)\n";
    };
    report("compiled", c);
    report("hand    ", h);
    std::cout << "\nThe hand preset packs more loads per block, raising "
                 "bank-level parallelism per fetched block.\n";
    return c.retVal == h.retVal ? 0 : 1;
}
