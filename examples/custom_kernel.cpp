/**
 * @file
 * End-to-end walkthrough for adding your own workload: define a
 * dot-product kernel in WIR, then compare the TRIPS tiled core against
 * the Core 2 / Pentium 4 / Pentium III reference models, reproducing a
 * one-row slice of the paper's Fig. 11 methodology.
 */

#include <iostream>

#include "core/machines.hh"
#include "wir/builder.hh"
#include "workloads/util.hh"

using namespace trips;

int
main()
{
    workloads::Workload w;
    w.name = "dotprod";
    w.suite = "custom";
    w.build = [](wir::Module &m) {
        Rng rng(7);
        Addr a = workloads::globalF64(m, "a", 4096,
                                      [&](size_t) { return rng.uniform(); });
        Addr b = workloads::globalF64(m, "b", 4096,
                                      [&](size_t) { return rng.uniform(); });
        wir::FunctionBuilder fb(m, "main", 0);
        auto pa = fb.iconst(static_cast<i64>(a));
        auto pb = fb.iconst(static_cast<i64>(b));
        auto acc = fb.fconst(0.0);
        auto i = fb.iconst(0);
        fb.label("loop");
        auto off = fb.shli(i, 3);
        fb.assign(acc, fb.fadd(acc,
            fb.fmul(fb.load(fb.add(pa, off), 0),
                    fb.load(fb.add(pb, off), 0))));
        fb.assign(i, fb.addi(i, 1));
        fb.br(fb.cmpLt(i, fb.iconst(4096)), "loop", "done");
        fb.label("done");
        fb.ret(fb.ftoi(fb.fmul(acc, fb.fconst(100.0))));
        fb.finish();
    };

    auto trips_run = core::runTrips(w, compiler::Options::compiled(),
                                    true);
    auto c2 = core::runPlatform(w, ooo::OooConfig::core2(),
                                risc::RiscOptions::gcc());
    auto p4 = core::runPlatform(w, ooo::OooConfig::pentium4(),
                                risc::RiscOptions::gcc());
    auto p3 = core::runPlatform(w, ooo::OooConfig::pentium3(),
                                risc::RiscOptions::gcc());

    std::cout << "dotprod cycles (lower is better):\n"
              << "  TRIPS      " << trips_run.uarch.cycles
              << "  (IPC " << trips_run.uarch.ipc() << ")\n"
              << "  Core 2     " << c2.cycles << "\n"
              << "  Pentium 4  " << p4.cycles << "\n"
              << "  Pentium 3  " << p3.cycles << "\n"
              << "speedup vs Core 2: "
              << static_cast<double>(c2.cycles) / trips_run.uarch.cycles
              << "x\n";
    bool ok = trips_run.retVal == c2.retVal && c2.retVal == p4.retVal;
    return ok ? 0 : 1;
}
