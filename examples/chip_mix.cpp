/**
 * @file
 * Chip mode: run a multi-programmed mix of two workloads concurrently
 * on the dual-core TRIPS chip (two cycle-level cores sharing the 1MB
 * NUCA L2 over the OCN; paper Table 1) and compare each core against
 * its solo single-core run. Architectural results must be identical
 * -- the shared uncore is timing interference only -- while cycles,
 * shared-L2 miss rates, and bank conflicts show the contention.
 *
 * Usage: example_chip_mix [workloadA workloadB]   (default: equake gcc,
 * the two most DRAM-hungry programs in the suite -- gcc's shared-L2
 * miss rate visibly inflates when equake runs beside it)
 */

#include <cstdio>

#include "compiler/codegen.hh"
#include "uarch/chip_sim.hh"
#include "wir/interp.hh"
#include "workloads/workload.hh"

using namespace trips;

namespace {

struct Solo
{
    isa::Program prog;
    uarch::UarchResult res;
};

Solo
runSolo(const workloads::Workload &w, const uarch::UarchConfig &cfg)
{
    wir::Module mod;
    w.build(mod);
    Solo s = {compiler::compileToTrips(mod,
                                       compiler::Options::compiled()),
              uarch::UarchResult()};
    MemImage mem;
    wir::Interp::loadGlobals(mod, mem);
    uarch::CycleSim sim(s.prog, mem, cfg);
    s.res = sim.run();
    return s;
}

double
missRate(const uarch::UarchResult &r)
{
    u64 total = r.l2Hits + r.l2Misses;
    return total ? 100.0 * static_cast<double>(r.l2Misses) / total : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 1 && argc != 3) {
        std::fprintf(stderr,
                     "usage: %s [workloadA workloadB]\n", argv[0]);
        return 2;
    }
    const char *name_a = argc == 3 ? argv[1] : "equake";
    const char *name_b = argc == 3 ? argv[2] : "gcc";
    const auto &wa = workloads::find(name_a);
    const auto &wb = workloads::find(name_b);

    uarch::ChipConfig ccfg = uarch::ChipConfig::prototype();

    // Solo references: each workload alone on a single core.
    Solo sa = runSolo(wa, ccfg.core);
    Solo sb = runSolo(wb, ccfg.core);

    // The mix: both at once on the dual-core chip, sharing the L2.
    wir::Module ma, mb;
    wa.build(ma);
    wb.build(mb);
    MemImage mem_a, mem_b;
    wir::Interp::loadGlobals(ma, mem_a);
    wir::Interp::loadGlobals(mb, mem_b);
    uarch::ChipSim chip({{&sa.prog, &mem_a}, {&sb.prog, &mem_b}}, ccfg);
    auto cr = chip.run();

    std::printf("dual-core mix: %s + %s (%llu chip cycles)\n\n",
                wa.name.c_str(), wb.name.c_str(),
                (unsigned long long)cr.cycles);
    std::printf("%-10s %12s %12s %8s %10s %10s\n", "core", "solo cyc",
                "mix cyc", "slowdown", "soloL2mr%", "mixL2mr%");
    const Solo *solos[2] = {&sa, &sb};
    const char *names[2] = {name_a, name_b};
    bool ok = true;
    for (unsigned c = 0; c < 2; ++c) {
        const auto &solo = solos[c]->res;
        const auto &mix = cr.cores[c];
        ok &= mix.retVal == solo.retVal && !mix.fuelExhausted;
        std::printf("%-10s %12llu %12llu %7.3fx %9.2f%% %9.2f%%\n",
                    names[c], (unsigned long long)solo.cycles,
                    (unsigned long long)mix.cycles,
                    static_cast<double>(mix.cycles) / solo.cycles,
                    missRate(solo), missRate(mix));
    }
    std::printf("\nshared-L2 bank conflicts: %llu (%llu stall cycles)\n",
                (unsigned long long)cr.uncore.bankConflicts,
                (unsigned long long)cr.uncore.bankConflictCycles);
    std::printf("OCN occupancy: %.4f flit-hops/link-cycle over %u links\n",
                cr.ocnOccupancy, chip.uncore().ocn().linkCount());
    for (size_t k = 0; k < net::OCN_NUM_CLASSES; ++k) {
        if (cr.ocn.packets[k] == 0)
            continue;
        std::printf("  OCN %-10s %8llu pkts %10llu bytes  avg hops %.2f\n",
                    net::ocnClassName(static_cast<net::OcnClass>(k)),
                    (unsigned long long)cr.ocn.packets[k],
                    (unsigned long long)cr.ocn.bytes[k],
                    cr.ocn.hops[k].mean());
    }
    std::printf("\narchitectural results %s their solo runs\n",
                ok ? "match" : "DIVERGE FROM");
    return ok ? 0 : 1;
}
