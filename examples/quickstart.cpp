/**
 * @file
 * Quickstart: build a tiny program in WIR, compile it for TRIPS, look
 * at the generated EDGE blocks, and run it on all three execution
 * models (functional dataflow, cycle-level tiled, RISC baseline).
 */

#include <iostream>

#include "compiler/codegen.hh"
#include "isa/disasm.hh"
#include "risc/core.hh"
#include "risc/wirtorisc.hh"
#include "trips/func_sim.hh"
#include "uarch/cycle_sim.hh"
#include "wir/builder.hh"
#include "wir/interp.hh"

using namespace trips;

int
main()
{
    // 1. Write a workload once in WIR: sum of i*i for i < 1000.
    wir::Module mod;
    wir::FunctionBuilder fb(mod, "main", 0);
    auto i = fb.iconst(0);
    auto sum = fb.iconst(0);
    fb.label("loop");
    fb.assign(sum, fb.add(sum, fb.mul(i, i)));
    fb.assign(i, fb.addi(i, 1));
    fb.br(fb.cmpLt(i, fb.iconst(1000)), "loop", "done");
    fb.label("done");
    fb.ret(sum);
    fb.finish();

    // 2. Compile to the TRIPS EDGE ISA and disassemble the first block.
    auto prog = compiler::compileToTrips(mod,
                                         compiler::Options::compiled());
    std::cout << "TRIPS blocks: " << prog.numBlocks() << "\n\n"
              << isa::disasmBlock(prog.block(prog.entry)) << "\n";

    // 3. Functional (dataflow) execution with ISA statistics.
    MemImage mem1;
    sim::FuncSim fsim(prog, mem1);
    auto fres = fsim.run();
    std::cout << "functional: ret=" << fres.retVal
              << " blocks=" << fres.stats.blocks
              << " avg block size="
              << fres.stats.meanBlockSize() << "\n";

    // 4. Cycle-level tiled microarchitecture.
    MemImage mem2;
    uarch::CycleSim csim(prog, mem2);
    auto cres = csim.run();
    std::cout << "cycle-level: ret=" << cres.retVal << " cycles="
              << cres.cycles << " IPC=" << cres.ipc() << "\n";

    // 5. The RISC baseline for comparison.
    auto rprog = risc::compileToRisc(mod);
    MemImage mem3;
    risc::Core core(rprog, mem3);
    i64 rv = core.run();
    std::cout << "risc: ret=" << rv << " insts="
              << core.counters().insts << "\n";
    return fres.retVal == rv && cres.retVal == rv ? 0 : 1;
}
